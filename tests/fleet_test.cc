#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/system.h"
#include "fleet/fleet_engine.h"
#include "common/thread_pool.h"
#include "fleet/virtual_clock.h"
#include "server/hot_cache.h"
#include "server/session_table.h"

namespace mars {
namespace {

core::System::Config SmallConfig() {
  core::System::Config config;
  config.scene.object_count = 60;
  config.scene.seed = 11;
  return config;
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  common::ThreadPool pool(4);
  for (const int batch_size : {0, 1, 3, 7, 64}) {
    std::atomic<int> counter{0};
    std::vector<int> hits(static_cast<size_t>(batch_size), 0);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < batch_size; ++i) {
      tasks.push_back([&counter, &hits, i] {
        ++hits[static_cast<size_t>(i)];
        counter.fetch_add(1);
      });
    }
    pool.RunBatch(tasks);
    EXPECT_EQ(counter.load(), batch_size);
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  common::ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back([&order, i] { order.push_back(i); });
  }
  pool.RunBatch(tasks);
  // Inline execution preserves submission order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  common::ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    std::vector<std::function<void()>> tasks(
        8, [&counter] { counter.fetch_add(1); });
    pool.RunBatch(tasks);
  }
  EXPECT_EQ(counter.load(), 80);
}

// Regression: a worker that sleeps through an entire small batch used to
// wake to a retired (nulled, then destroyed) batch pointer and crash.
// Thousands of tiny batches on a wide pool make that window likely; the
// fix (workers skip retired batches, RunBatch waits for every worker to
// leave the batch) must survive this under TSan/ASan too.
TEST(ThreadPoolTest, ManySmallBatchesDoNotRace) {
  common::ThreadPool pool(8);
  std::atomic<int> counter{0};
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::function<void()>> tasks(
        2, [&counter] { counter.fetch_add(1); });
    pool.RunBatch(tasks);
  }
  EXPECT_EQ(counter.load(), 4000);
}

// ---------------------------------------------------------------------------
// VirtualScheduler

TEST(VirtualSchedulerTest, OrdersByTickThenClientId) {
  fleet::VirtualScheduler scheduler;
  scheduler.Schedule(2'000'000, 3);
  scheduler.Schedule(1'000'000, 9);
  scheduler.Schedule(1'000'000, 2);
  scheduler.Schedule(1'000'000, 5);
  ASSERT_FALSE(scheduler.empty());
  EXPECT_EQ(scheduler.NextMicros(), 1'000'000);
  EXPECT_EQ(scheduler.PopDue(1'000'000), (std::vector<int32_t>{2, 5, 9}));
  EXPECT_EQ(scheduler.NextMicros(), 2'000'000);
  EXPECT_EQ(scheduler.PopDue(2'000'000), (std::vector<int32_t>{3}));
  EXPECT_TRUE(scheduler.empty());
}

TEST(VirtualSchedulerTest, MicroTickRoundTrip) {
  EXPECT_EQ(net::SimClock::ToMicros(1.0), 1'000'000);
  EXPECT_EQ(net::SimClock::ToMicros(0.25), 250'000);
  EXPECT_DOUBLE_EQ(net::SimClock::ToSeconds(1'500'000), 1.5);
}

// ---------------------------------------------------------------------------
// RunMetrics::Merge

TEST(RunMetricsTest, MergeSumsAndWeights) {
  core::RunMetrics a;
  a.frames = 100;
  a.demand_bytes = 1000;
  a.cache_hit_rate = 0.8;
  a.max_stale_run_frames = 3;
  core::RunMetrics b;
  b.frames = 300;
  b.demand_bytes = 500;
  b.cache_hit_rate = 0.4;
  b.max_stale_run_frames = 7;
  a.Merge(b);
  EXPECT_EQ(a.frames, 400);
  EXPECT_EQ(a.demand_bytes, 1500);
  // Frames-weighted: (0.8*100 + 0.4*300) / 400 = 0.5.
  EXPECT_DOUBLE_EQ(a.cache_hit_rate, 0.5);
  EXPECT_EQ(a.max_stale_run_frames, 7);
}

TEST(LatencyHistogramTest, QuantilesBracketSamples) {
  core::LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);  // empty
  for (int i = 0; i < 90; ++i) h.Add(0.01);
  for (int i = 0; i < 10; ++i) h.Add(10.0);
  EXPECT_EQ(h.total, 100);
  // Quantiles return the upper bucket edge: within one quarter-octave
  // (< 19%) above the sample.
  const double p50 = h.Quantile(0.50);
  EXPECT_GE(p50, 0.01);
  EXPECT_LT(p50, 0.012);
  const double p99 = h.Quantile(0.99);
  EXPECT_GE(p99, 10.0);
  EXPECT_LT(p99, 12.0);
  EXPECT_LE(p50, p99);
  // Out-of-range samples clamp to the edge buckets instead of dropping.
  h.Add(0.0);
  h.Add(1e9);
  EXPECT_EQ(h.total, 102);
}

TEST(LatencyHistogramTest, MergeEqualsCombinedAdds) {
  core::LatencyHistogram a, b, combined;
  for (int i = 0; i < 40; ++i) {
    const double v = 0.001 * (i + 1) * (i + 1);
    (i % 2 == 0 ? a : b).Add(v);
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.total, combined.total);
  for (int i = 0; i < core::LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(a.counts[i], combined.counts[i]) << "bucket " << i;
  }
  // Bit-identical quantiles: the determinism the fleet JSON relies on.
  EXPECT_DOUBLE_EQ(a.Quantile(0.99), combined.Quantile(0.99));
}

TEST(RunMetricsTest, JsonIsFullPrecision) {
  core::RunMetrics m;
  m.total_response_seconds = 0.1 + 0.2;  // 0.30000000000000004
  const std::string json = core::RunMetricsJson(m);
  EXPECT_NE(json.find("0.30000000000000004"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// SessionTable / HotRecordCache units

TEST(SessionTableTest, GetOrCreateIsStableAndIsolated) {
  server::SessionTable table;
  server::ClientSession* a = table.GetOrCreate(1);
  server::ClientSession* b = table.GetOrCreate(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(table.GetOrCreate(1), a);
  EXPECT_EQ(table.Find(1), a);
  EXPECT_EQ(table.Find(99), nullptr);
  a->delivered.insert(42);
  EXPECT_EQ(table.Find(2)->delivered.size(), 0u);
  EXPECT_EQ(table.size(), 2);
  EXPECT_EQ(table.TotalTrackedRecords(), 1);
}

TEST(HotRecordCacheTest, LookupIsReadOnlyAndLruEvicts) {
  // One shard so the LRU order is directly observable.
  server::HotRecordCache cache(/*budget_bytes=*/8, /*shards=*/1);
  cache.Insert(1, std::vector<uint8_t>(4, 0xAB));
  cache.Insert(2, std::vector<uint8_t>(4, 0xCD));
  EXPECT_EQ(cache.entries(), 2);
  EXPECT_EQ(cache.Lookup(1), 4);
  EXPECT_EQ(cache.Lookup(3), -1);
  // Lookup must NOT refresh recency: 1 is still the LRU victim.
  cache.Insert(3, std::vector<uint8_t>(4, 0xEF));
  EXPECT_EQ(cache.Lookup(1), -1);
  EXPECT_EQ(cache.Lookup(2), 4);
  EXPECT_EQ(cache.evictions(), 1);
  // Touch does refresh: after touching 2, inserting evicts 3.
  cache.Touch(2);
  cache.Insert(4, std::vector<uint8_t>(4, 0x01));
  EXPECT_EQ(cache.Lookup(3), -1);
  EXPECT_EQ(cache.Lookup(2), 4);
}

TEST(HotRecordCacheTest, ZeroBudgetDisables) {
  server::HotRecordCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(1, std::vector<uint8_t>(4, 0));
  EXPECT_EQ(cache.Lookup(1), -1);
  EXPECT_EQ(cache.entries(), 0);
}

// ---------------------------------------------------------------------------
// FleetEngine

class FleetEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto system = core::System::Create(SmallConfig());
    ASSERT_TRUE(system.ok());
    system_ = std::move(*system).release();
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  static core::System* system_;
};

core::System* FleetEngineTest::system_ = nullptr;

std::string FleetJson(const fleet::FleetResult& result) {
  std::string out;
  for (const fleet::ClientResult& client : result.clients) {
    out += std::to_string(client.spec.id) + ":" +
           core::RunMetricsJson(client.metrics) + ";" +
           std::to_string(client.hot_hits) + "/" +
           std::to_string(client.hot_misses) + "\n";
  }
  out += "aggregate:" + core::RunMetricsJson(result.aggregate);
  return out;
}

// The tentpole guarantee: same seed, any worker count → bit-identical
// per-client and aggregate metrics.
TEST_F(FleetEngineTest, BitIdenticalAcrossWorkerCounts) {
  std::string reference;
  for (const int workers : {1, 8}) {
    fleet::FleetOptions options;
    options.workers = workers;
    fleet::FleetEngine engine(
        *system_, options,
        fleet::FleetEngine::MakeMixedFleet(9, /*frames=*/25, /*speed=*/0.5,
                                           /*seed=*/0));
    const fleet::FleetResult result = engine.Run();
    ASSERT_EQ(result.clients.size(), 9u);
    EXPECT_GT(result.aggregate.frames, 0);
    const std::string json = FleetJson(result);
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference)
          << "fleet metrics diverged at workers=" << workers;
    }
  }
}

// Sharding the server's coefficient index must keep the fleet
// deterministic: at a fixed shard count the metrics are byte-identical
// at any worker count and for both fan-out modes (sequential and
// parallel). Against the single-tree system only the index I/O counts
// may differ (K independent trees traverse differently) — everything
// the clients observe (bytes, records, timing) must match exactly.
TEST_F(FleetEngineTest, ShardedServerBitIdenticalAcrossWorkersAndFanOut) {
  auto run = [](core::System& system, int workers) {
    fleet::FleetOptions options;
    options.workers = workers;
    fleet::FleetEngine engine(
        system, options,
        fleet::FleetEngine::MakeMixedFleet(9, /*frames=*/25, /*speed=*/0.5,
                                           /*seed=*/0));
    return engine.Run();
  };

  const fleet::FleetResult unsharded = run(*system_, 1);

  std::string reference;
  for (const int fanout_workers : {1, 4}) {
    core::System::Config config = SmallConfig();
    config.shards = 4;
    config.fanout_workers = fanout_workers;
    auto sharded = core::System::Create(config);
    ASSERT_TRUE(sharded.ok());
    for (const int workers : {1, 8}) {
      const fleet::FleetResult result = run(**sharded, workers);
      const std::string json = FleetJson(result);
      if (reference.empty()) {
        reference = json;
      } else {
        EXPECT_EQ(json, reference)
            << "diverged at workers=" << workers
            << " fanout_workers=" << fanout_workers;
      }
      // Identical required sets → identical client-observable traffic.
      EXPECT_EQ(result.aggregate.demand_bytes,
                unsharded.aggregate.demand_bytes);
      EXPECT_EQ(result.aggregate.prefetch_bytes,
                unsharded.aggregate.prefetch_bytes);
      EXPECT_EQ(result.aggregate.records_delivered,
                unsharded.aggregate.records_delivered);
      EXPECT_EQ(result.aggregate.frames, unsharded.aggregate.frames);
      EXPECT_EQ(result.aggregate.total_response_seconds,
                unsharded.aggregate.total_response_seconds);
    }
  }
}

// Load-adaptive rebalancing must not break the determinism guarantee:
// the rebalancer only ever ticks in the serial Phase B, its decisions
// read order-independent atomic counter sums, so a Zipf-skewed fleet
// with --rebalance on stays byte-identical at any worker count — same
// metrics AND the same op sequence.
TEST_F(FleetEngineTest, RebalancingFleetBitIdenticalAcrossWorkers) {
  std::string reference;
  for (const int workers : {1, 8}) {
    core::System::Config config = SmallConfig();
    config.scene.placement = workload::Placement::kZipf;
    config.shards = 4;
    config.rebalance.enabled = true;
    config.rebalance.interval = 4;
    config.rebalance.min_split_records = 16;
    config.rebalance.split_factor = 1.5;
    // A fresh system per worker count: rebalancing mutates the server.
    auto system = core::System::Create(config);
    ASSERT_TRUE(system.ok());

    fleet::FleetOptions options;
    options.workers = workers;
    fleet::FleetEngine engine(
        **system, options,
        fleet::FleetEngine::MakeMixedFleet(9, /*frames=*/25, /*speed=*/0.5,
                                           /*seed=*/0));
    const fleet::FleetResult result = engine.Run();

    // The skewed scene must actually trip the policy, or this test
    // would vacuously compare two static runs.
    EXPECT_GE((*system)->server().rebalance_ops(), 1);

    std::string json = FleetJson(result);
    json += "\nops:";
    for (const server::RebalanceEvent& event :
         (*system)->server().RebalanceEvents()) {
      json += (event.kind == server::RebalanceEvent::Kind::kSplit ? " s" :
                                                                    " m") +
              std::to_string(event.shard) + ">" +
              std::to_string(event.target) + "@" +
              std::to_string(event.round);
    }
    json += " live:" + std::to_string((*system)->server().live_shard_count());
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference)
          << "rebalancing fleet diverged at workers=" << workers;
    }
  }
}

// Session isolation: two streaming clients with identical tours and seeds
// must EACH receive the full record stream. If sessions leaked between
// clients, the second client's deliveries would be filtered as duplicates
// of the first's.
TEST_F(FleetEngineTest, StreamingSessionsAreIsolated) {
  std::vector<fleet::ClientSpec> specs(2);
  specs[0].id = 0;
  specs[1].id = 1;
  for (fleet::ClientSpec& spec : specs) {
    spec.kind = fleet::ClientKind::kStreaming;
    spec.frames = 20;
    spec.seed = 5;       // identical twins...
    spec.tour_seed = 9;  // ...on the same trajectory
    // Wide windows so the sparse test scene actually yields records.
    spec.query_fraction = 0.3;
  }
  fleet::FleetOptions options;
  options.workers = 2;
  fleet::FleetEngine engine(*system_, options, std::move(specs));
  const fleet::FleetResult result = engine.Run();
  ASSERT_EQ(result.clients.size(), 2u);
  const core::RunMetrics& first = result.clients[0].metrics;
  const core::RunMetrics& second = result.clients[1].metrics;
  EXPECT_GT(first.records_delivered, 0);
  EXPECT_EQ(first.records_delivered, second.records_delivered);
  EXPECT_EQ(first.demand_bytes, second.demand_bytes);
  // Server-side, each session tracked its own copy.
  const server::ClientSession* s0 = engine.sessions().Find(0);
  const server::ClientSession* s1 = engine.sessions().Find(1);
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(static_cast<int64_t>(s0->delivered.size()),
            first.records_delivered);
  EXPECT_EQ(static_cast<int64_t>(s1->delivered.size()),
            second.records_delivered);
}

// A client's content-level behaviour (what it queries and receives) must
// not depend on who else is in the fleet — only its *timing* may. Run
// client 2 alone, then inside a 6-client fleet, and compare.
TEST_F(FleetEngineTest, ClientBehaviourIndependentOfFleetSize) {
  const std::vector<fleet::ClientSpec> six =
      fleet::FleetEngine::MakeMixedFleet(6, /*frames=*/20, /*speed=*/0.5,
                                         /*seed=*/0);
  // Disable the hot cache so per-client hit counters match too (cache
  // contents legitimately depend on the co-resident clients).
  fleet::FleetOptions options;
  options.workers = 2;
  options.hot_cache_bytes = 0;

  fleet::FleetEngine solo_engine(
      *system_, options, std::vector<fleet::ClientSpec>{six[1]});
  const fleet::FleetResult solo = solo_engine.Run();

  fleet::FleetEngine fleet_engine(*system_, options, six);
  const fleet::FleetResult full = fleet_engine.Run();

  const core::RunMetrics& alone = solo.clients[0].metrics;
  const core::RunMetrics& among = full.clients[1].metrics;
  EXPECT_EQ(alone.frames, among.frames);
  EXPECT_EQ(alone.demand_bytes, among.demand_bytes);
  EXPECT_EQ(alone.prefetch_bytes, among.prefetch_bytes);
  EXPECT_EQ(alone.node_accesses, among.node_accesses);
  EXPECT_EQ(alone.records_delivered, among.records_delivered);
  EXPECT_EQ(alone.demand_exchanges, among.demand_exchanges);
  // Timing is where the shared cell shows up: with six clients the cell
  // is busier, so delays can only grow.
  EXPECT_GE(among.total_response_seconds, alone.total_response_seconds);
}

// The hot-encoding cache actually short-circuits repeated encodings when
// clients overlap (identical twins are the extreme case).
TEST_F(FleetEngineTest, HotCacheServesOverlappingClients) {
  std::vector<fleet::ClientSpec> specs(3);
  for (int i = 0; i < 3; ++i) {
    specs[static_cast<size_t>(i)].id = i;
    specs[static_cast<size_t>(i)].kind = fleet::ClientKind::kStreaming;
    specs[static_cast<size_t>(i)].frames = 15;
    specs[static_cast<size_t>(i)].seed = 5;
    specs[static_cast<size_t>(i)].tour_seed = 9;
    specs[static_cast<size_t>(i)].query_fraction = 0.3;
    // Stagger the twins: same-tick lookups see the tick-frozen cache, so
    // hits require the first twin's commit to land first.
    specs[static_cast<size_t>(i)].start_offset_seconds = 0.25 * i;
  }
  fleet::FleetOptions options;
  options.hot_cache_bytes = 4 * 1024 * 1024;
  fleet::FleetEngine engine(*system_, options, std::move(specs));
  const fleet::FleetResult result = engine.Run();
  EXPECT_GT(result.hot_misses, 0);
  // Clients 1 and 2 ride on client 0's encodings.
  EXPECT_GT(result.hot_hits, 0);
  EXPECT_GT(result.hot_bytes_saved, 0);
  EXPECT_EQ(result.clients[0].hot_hits, 0);  // first encoder misses
  EXPECT_GT(result.clients[1].hot_hits, 0);
  EXPECT_GT(result.clients[2].hot_hits, 0);
}

// Degraded fleet: 5% loss on both the private bearers and the cell, plus
// outage schedules, must still complete every frame with bounded retries
// (no hang) and deterministic accounting.
TEST_F(FleetEngineTest, LossyFleetCompletesWithBoundedRetries) {
  fleet::FleetOptions options;
  options.workers = 4;
  options.client_link.loss_probability = 0.05;
  options.client_fault.outage_rate_per_hour = 60.0;
  options.client_fault.outage_mean_seconds = 5.0;
  options.cell.loss_probability = 0.05;
  options.cell_fault.outage_rate_per_hour = 60.0;
  options.cell_fault.outage_mean_seconds = 5.0;
  const int32_t kClients = 6;
  const int32_t kFrames = 25;
  fleet::FleetEngine engine(
      *system_, options,
      fleet::FleetEngine::MakeMixedFleet(kClients, kFrames, /*speed=*/0.5,
                                         /*seed=*/3));
  const fleet::FleetResult result = engine.Run();
  // Every client ran its whole tour.
  EXPECT_EQ(result.aggregate.frames, kClients * kFrames);
  for (const fleet::ClientResult& client : result.clients) {
    EXPECT_EQ(client.metrics.frames, kFrames);
  }
  // Retries happened but stayed bounded by the per-exchange budgets.
  EXPECT_GT(result.aggregate.retries + result.cell_retries, 0);
  // The run drained in finite virtual time.
  EXPECT_GT(result.virtual_seconds, 0.0);
  EXPECT_LT(result.virtual_seconds, 10000.0);

  // And the degraded run is just as deterministic: replay serially.
  fleet::FleetOptions serial = options;
  serial.workers = 1;
  fleet::FleetEngine replay(
      *system_, serial,
      fleet::FleetEngine::MakeMixedFleet(kClients, kFrames, /*speed=*/0.5,
                                         /*seed=*/3));
  EXPECT_EQ(FleetJson(replay.Run()), FleetJson(result));
}

// WFQ in the fleet: two identical naive clients on a saturated cell, one
// with triple weight. The heavier client must see strictly lower total
// delivery delay — the weight actually buys bandwidth.
TEST_F(FleetEngineTest, HeavierClientGetsLowerDelay) {
  std::vector<fleet::ClientSpec> specs(2);
  for (int i = 0; i < 2; ++i) {
    specs[i].id = i;
    specs[i].kind = fleet::ClientKind::kNaive;
    specs[i].frames = 20;
    specs[i].seed = 7;       // identical twins...
    specs[i].tour_seed = 4;  // ...on the same trajectory
    specs[i].query_fraction = 0.3;
  }
  specs[1].weight = 3.0;
  fleet::FleetOptions options;
  options.workers = 2;
  options.hot_cache_bytes = 0;
  // Squeeze the cell so both clients stay backlogged and contend.
  options.cell.cell_bandwidth_kbps = 96.0;
  options.cell.client_bandwidth_kbps = 96.0;
  fleet::FleetEngine engine(*system_, options, std::move(specs));
  const fleet::FleetResult result = engine.Run();
  ASSERT_EQ(result.clients.size(), 2u);
  const core::RunMetrics& light = result.clients[0].metrics;
  const core::RunMetrics& heavy = result.clients[1].metrics;
  ASSERT_GT(light.demand_bytes, 0);
  EXPECT_EQ(light.demand_bytes, heavy.demand_bytes);
  EXPECT_LT(heavy.total_response_seconds, light.total_response_seconds);
  EXPECT_LT(heavy.P99ResponseSeconds(), light.P99ResponseSeconds());
}

// Admission control on a starved cell: naive bulk requests get deferred
// and eventually shed, motion-aware classes are never shed, accounting
// balances, and the whole thing stays bit-identical across worker counts.
TEST_F(FleetEngineTest, AdmissionShedsOnlyBulkAndStaysDeterministic) {
  const int32_t kClients = 9;
  const int32_t kFrames = 25;
  auto make_options = [](int workers) {
    fleet::FleetOptions options;
    options.workers = workers;
    // A starved cell with a tight admission budget so the controller
    // actually has to defer and shed.
    options.cell.cell_bandwidth_kbps = 128.0;
    options.cell.client_bandwidth_kbps = 64.0;
    options.admission.enabled = true;
    options.admission.max_client_backlog_bytes = 8 * 1024;
    options.admission.max_client_queue_depth = 2;
    options.admission.overload_backlog_bytes = 16 * 1024;
    options.admission.shed_backlog_bytes = 48 * 1024;
    options.admission.defer_backoff_seconds = 0.25;
    options.admission.max_defers = 3;
    return options;
  };
  auto make_specs = [&] {
    auto specs = fleet::FleetEngine::MakeMixedFleet(kClients, kFrames,
                                                    /*speed=*/0.5, /*seed=*/0);
    for (fleet::ClientSpec& spec : specs) {
      spec.query_fraction = 0.3;  // enough demand to congest the cell
      spec.weight = 1.0 + static_cast<double>(spec.id % 3);
    }
    return specs;
  };

  fleet::FleetEngine engine(*system_, make_options(8), make_specs());
  const fleet::FleetResult result = engine.Run();

  // Every client still completed its tour: deferral is bounded, shedding
  // consumes the frame, nothing hangs.
  EXPECT_EQ(result.aggregate.frames, kClients * kFrames);
  // The controller actually exercised both the defer and the shed paths.
  EXPECT_GT(result.deferred_exchanges, 0);
  EXPECT_GT(result.shed_exchanges, 0);
  EXPECT_GT(result.admitted_exchanges, 0);
  EXPECT_GT(result.peak_cell_backlog_bytes, 0);
  // Aggregate metrics agree with the controller's own totals.
  EXPECT_EQ(result.aggregate.deferred_exchanges, result.deferred_exchanges);
  EXPECT_EQ(result.aggregate.shed_exchanges, result.shed_exchanges);
  // Only the naive bulk class is deferrable → only it can be shed.
  const auto& streaming =
      result.by_kind[static_cast<size_t>(fleet::ClientKind::kStreaming)];
  const auto& buffered =
      result.by_kind[static_cast<size_t>(fleet::ClientKind::kBuffered)];
  const auto& naive =
      result.by_kind[static_cast<size_t>(fleet::ClientKind::kNaive)];
  EXPECT_EQ(streaming.metrics.shed_exchanges, 0);
  EXPECT_EQ(buffered.metrics.shed_exchanges, 0);
  EXPECT_EQ(naive.metrics.shed_exchanges, result.shed_exchanges);
  EXPECT_GT(streaming.clients, 0);
  EXPECT_GT(naive.clients, 0);
  // Sessions carry the per-client admission history.
  int64_t session_defers = 0;
  int64_t session_sheds = 0;
  for (const fleet::ClientResult& client : result.clients) {
    const server::ClientSession* session =
        engine.sessions().Find(client.spec.id);
    ASSERT_NE(session, nullptr);
    session_defers += session->deferred_requests;
    session_sheds += session->shed_requests;
  }
  EXPECT_EQ(session_defers, result.deferred_exchanges);
  EXPECT_EQ(session_sheds, result.shed_exchanges);

  // Deferral retries reshape the tick schedule into many tiny batches —
  // exactly the load that exposed the thread-pool retire race — and the
  // run must still be bit-identical serially.
  fleet::FleetEngine replay(*system_, make_options(1), make_specs());
  const fleet::FleetResult serial = replay.Run();
  EXPECT_EQ(FleetJson(serial), FleetJson(result));
  EXPECT_EQ(serial.deferred_exchanges, result.deferred_exchanges);
  EXPECT_EQ(serial.shed_exchanges, result.shed_exchanges);
  EXPECT_EQ(serial.peak_cell_backlog_bytes, result.peak_cell_backlog_bytes);
}

// Admission disabled (the default) must leave every metric untouched:
// no deferrals, no sheds, no backpressure — the legacy behaviour.
TEST_F(FleetEngineTest, AdmissionDisabledIsInert) {
  fleet::FleetOptions options;
  options.workers = 2;
  fleet::FleetEngine engine(
      *system_, options,
      fleet::FleetEngine::MakeMixedFleet(6, /*frames=*/15, /*speed=*/0.5,
                                         /*seed=*/2));
  const fleet::FleetResult result = engine.Run();
  EXPECT_EQ(result.admitted_exchanges, 0);
  EXPECT_EQ(result.deferred_exchanges, 0);
  EXPECT_EQ(result.shed_exchanges, 0);
  EXPECT_EQ(result.aggregate.backpressure_frames, 0);
}

// ---------------------------------------------------------------------------
// Cross-client request coalescing (server inflight table)

// A fleet whose members ride the same seeded tour — the co-located
// workload the coalescer exists for.
std::vector<fleet::ClientSpec> CoLocatedStreamingFleet(int32_t n,
                                                       int32_t frames) {
  std::vector<fleet::ClientSpec> specs;
  for (int32_t i = 0; i < n; ++i) {
    fleet::ClientSpec spec;
    spec.id = i;
    spec.kind = fleet::ClientKind::kStreaming;
    spec.tour_kind = workload::TourKind::kTram;
    spec.frames = frames;
    spec.seed = 100 + static_cast<uint64_t>(i);
    spec.tour_seed = 900;  // shared: identical trajectories
    spec.query_fraction = 0.08;
    specs.push_back(spec);
  }
  return specs;
}

// FleetJson plus the coalescing counters, so divergence in the shared-
// delivery accounting fails the byte-identity checks too.
std::string CoalesceJson(const fleet::FleetResult& result) {
  std::string out = FleetJson(result);
  for (const fleet::ClientResult& client : result.clients) {
    out += "\n" + std::to_string(client.spec.id) + ":coalesce " +
           std::to_string(client.coalesce_hits) + "/" +
           std::to_string(client.coalesce_attaches) + "/" +
           std::to_string(client.coalesce_bytes_saved) + "/" +
           std::to_string(client.encode_calls) + "/" +
           std::to_string(client.cell_bytes);
  }
  out += "\ntotals:" + std::to_string(result.coalesce_hits) + "/" +
         std::to_string(result.coalesce_bytes_saved) + "/" +
         std::to_string(result.encode_calls) + "/" +
         std::to_string(result.cell_bytes);
  return out;
}

// The coalesced two-phase discipline must stay deterministic: at a fixed
// shard count, workers 1 and 8 give byte-identical metrics *and*
// byte-identical coalescing counters, with the feature off and on.
TEST_F(FleetEngineTest, CoalescedFleetBitIdenticalAcrossWorkers) {
  core::System::Config config = SmallConfig();
  config.shards = 4;
  auto sharded = core::System::Create(config);
  ASSERT_TRUE(sharded.ok());
  for (const bool coalesce : {false, true}) {
    std::string reference;
    for (const int workers : {1, 8}) {
      fleet::FleetOptions options;
      options.workers = workers;
      options.coalesce.enabled = coalesce;
      fleet::FleetEngine engine(**sharded, options,
                                CoLocatedStreamingFleet(8, /*frames=*/20));
      const std::string json = CoalesceJson(engine.Run());
      if (reference.empty()) {
        reference = json;
      } else {
        EXPECT_EQ(json, reference) << "diverged at workers=" << workers
                                   << " coalesce=" << coalesce;
      }
    }
  }
}

// The perf property: co-located clients requesting the same records pay
// the cell once under coalescing, and the server encodes each record
// once per tick instead of once per requester. What the clients receive
// must not change at all.
TEST_F(FleetEngineTest, CoalescingReducesCellBytesAndEncodes) {
  auto run = [&](bool coalesce) {
    fleet::FleetOptions options;
    options.workers = 4;
    options.coalesce.enabled = coalesce;
    fleet::FleetEngine engine(*system_, options,
                              CoLocatedStreamingFleet(6, /*frames=*/20));
    return engine.Run();
  };
  const fleet::FleetResult off = run(false);
  const fleet::FleetResult on = run(true);

  // Delivery is unchanged: same frames, same records, same client bytes.
  EXPECT_EQ(on.aggregate.frames, off.aggregate.frames);
  EXPECT_EQ(on.aggregate.records_delivered, off.aggregate.records_delivered);
  EXPECT_EQ(on.aggregate.demand_bytes, off.aggregate.demand_bytes);

  // The carrier path is exercised and cheaper.
  EXPECT_GT(on.coalesce_hits, 0);
  EXPECT_GT(on.coalesce_bytes_saved, 0);
  EXPECT_LT(on.cell_bytes, off.cell_bytes);
  EXPECT_LT(on.encode_calls, off.encode_calls);
  // Saved payload is real savings even after the attach headers.
  EXPECT_GT(on.coalesce_bytes_saved, on.coalesce_header_bytes);

  // Off is a strict passthrough: no coalescing state leaks into it.
  EXPECT_EQ(off.coalesce_hits, 0);
  EXPECT_EQ(off.coalesce_attaches, 0);
  EXPECT_EQ(off.coalesce_bytes_saved, 0);
  EXPECT_EQ(off.coalesce_refused, 0);
}

// Naive clients fetch whole objects, never coefficient records, so a
// naive-only fleet must behave identically with coalescing on — the
// inflight table simply never has anything to attach to.
TEST_F(FleetEngineTest, NaiveOnlyFleetUnaffectedByCoalescing) {
  auto run = [&](bool coalesce) {
    fleet::FleetOptions options;
    options.workers = 2;
    options.coalesce.enabled = coalesce;
    std::vector<fleet::ClientSpec> specs;
    for (int32_t i = 0; i < 4; ++i) {
      fleet::ClientSpec spec;
      spec.id = i;
      spec.kind = fleet::ClientKind::kNaive;
      spec.frames = 15;
      spec.seed = 100 + static_cast<uint64_t>(i);
      spec.tour_seed = 900;
      specs.push_back(spec);
    }
    fleet::FleetEngine engine(*system_, options, std::move(specs));
    return engine.Run();
  };
  const fleet::FleetResult off = run(false);
  const fleet::FleetResult on = run(true);
  EXPECT_EQ(FleetJson(on), FleetJson(off));
  EXPECT_EQ(on.cell_bytes, off.cell_bytes);
  EXPECT_EQ(on.coalesce_hits, 0);
  EXPECT_EQ(on.coalesce_attaches, 0);
}

// ---------------------------------------------------------------------------
// Multi-cell topology, handover, and failover

// FleetJson plus the topology / handover / chaos accounting, so any
// divergence in the fault-tolerance machinery fails the byte-identity
// checks too.
std::string TopologyJson(const fleet::FleetResult& result) {
  std::string out = FleetJson(result);
  for (const fleet::ClientResult& client : result.clients) {
    out += "\n" + std::to_string(client.spec.id) + ":cells " +
           std::to_string(client.home_cell) + "/" +
           std::to_string(client.final_cell) + "/" +
           std::to_string(client.handovers) + "/" +
           std::to_string(client.failovers);
  }
  for (const fleet::FleetResult::CellStats& cell : result.cell_stats) {
    out += "\ncell:" + std::to_string(cell.bytes) + "/" +
           std::to_string(cell.peak_backlog_bytes) + "/" +
           std::to_string(cell.handovers_in);
  }
  out += "\nhandover:" + std::to_string(result.handovers) + "/" +
         std::to_string(result.failovers) + "/" +
         std::to_string(result.reissued_transfers) + "/" +
         std::to_string(result.reissued_bytes);
  out += "\nchaos:" + std::to_string(result.chaos_session_desyncs) + "/" +
         std::to_string(result.chaos_duplicate_deliveries) + "/" +
         std::to_string(result.chaos_stranded_waiters) + "/" +
         std::to_string(result.chaos_unresolved_exchanges);
  return out;
}

// A fleet that actually roams: fast mixed clients on a scene tiled into
// four cells, so tours cross cell borders and handovers happen.
std::vector<fleet::ClientSpec> RoamingFleet(int32_t n, int32_t frames) {
  auto specs =
      fleet::FleetEngine::MakeMixedFleet(n, frames, /*speed=*/0.9, /*seed=*/4);
  for (fleet::ClientSpec& spec : specs) spec.query_fraction = 0.25;
  return specs;
}

// cells = 1 must remain a strict bit-identical passthrough: same
// metrics as a FleetOptions that never mentions cells, and none of the
// topology machinery engages.
TEST_F(FleetEngineTest, SingleCellIsStrictPassthrough) {
  auto run = [&](int32_t cells) {
    fleet::FleetOptions options;
    options.workers = 2;
    options.cells = cells;
    fleet::FleetEngine engine(*system_, options, RoamingFleet(6, 20));
    return engine.Run();
  };
  const fleet::FleetResult legacy = run(1);
  EXPECT_TRUE(legacy.cell_stats.empty());
  EXPECT_EQ(legacy.handovers, 0);
  EXPECT_EQ(legacy.failovers, 0);
  EXPECT_EQ(legacy.reissued_transfers, 0);
  for (const fleet::ClientResult& client : legacy.clients) {
    EXPECT_EQ(client.home_cell, 0);
    EXPECT_EQ(client.final_cell, 0);
    EXPECT_EQ(client.handovers, 0);
  }
}

// The tentpole guarantee extended to K > 1: tiling the plane, crossing
// borders, and failing over must all stay bit-identical at any worker
// count, with coalescing off and on.
TEST_F(FleetEngineTest, MultiCellBitIdenticalAcrossWorkers) {
  for (const bool coalesce : {false, true}) {
    std::string reference;
    for (const int workers : {1, 8}) {
      fleet::FleetOptions options;
      options.workers = workers;
      options.cells = 4;
      options.coalesce.enabled = coalesce;
      // A forced mid-run outage so failover + re-issue paths execute.
      options.cell_outages.push_back({0, 5.0, 6.0});
      options.cell_outages.push_back({2, 12.0, 4.0});
      fleet::FleetEngine engine(*system_, options, RoamingFleet(8, 25));
      const fleet::FleetResult result = engine.Run();
      EXPECT_EQ(result.chaos_session_desyncs, 0);
      EXPECT_EQ(result.chaos_duplicate_deliveries, 0);
      EXPECT_EQ(result.chaos_stranded_waiters, 0);
      EXPECT_EQ(result.chaos_unresolved_exchanges, 0);
      const std::string json = TopologyJson(result);
      if (reference.empty()) {
        reference = json;
      } else {
        EXPECT_EQ(json, reference) << "diverged at workers=" << workers
                                   << " coalesce=" << coalesce;
      }
    }
  }
}

// Roaming across four cells: clients are actually distributed over the
// plane, crossings are counted, and per-cell accounting balances with
// the fleet totals.
TEST_F(FleetEngineTest, RoamingFleetHandsOverBetweenCells) {
  fleet::FleetOptions options;
  options.workers = 4;
  options.cells = 4;
  fleet::FleetEngine engine(*system_, options, RoamingFleet(8, 30));
  const fleet::FleetResult result = engine.Run();
  ASSERT_EQ(result.cell_stats.size(), 4u);
  // Fast tours over the whole plane must cross at least one border.
  EXPECT_GT(result.handovers, 0);
  EXPECT_EQ(result.failovers, 0);  // no outages: all voluntary
  int64_t client_handovers = 0;
  std::set<int32_t> homes;
  for (const fleet::ClientResult& client : result.clients) {
    client_handovers += client.handovers;
    homes.insert(client.home_cell);
    EXPECT_GE(client.home_cell, 0);
    EXPECT_LT(client.home_cell, 4);
    EXPECT_GE(client.final_cell, 0);
    EXPECT_LT(client.final_cell, 4);
  }
  EXPECT_EQ(client_handovers, result.handovers);
  EXPECT_GT(homes.size(), 1u);  // the fleet does not pile into one cell
  int64_t handovers_in = 0;
  int64_t cell_bytes = 0;
  for (const fleet::FleetResult::CellStats& cell : result.cell_stats) {
    handovers_in += cell.handovers_in;
    cell_bytes += cell.bytes;
  }
  EXPECT_EQ(handovers_in, result.handovers);
  EXPECT_EQ(cell_bytes, result.cell_bytes);
}

// A forced outage mid-transfer: the carrier's cell dies, its clients
// fail over to a healthy neighbour, and the in-flight work is cancelled
// and deterministically re-issued there — nothing is lost, nothing is
// delivered twice, and the metrics replay byte-for-byte serially.
TEST_F(FleetEngineTest, CellDeathMidTransferReissuesDeterministically) {
  auto run = [&](int workers) {
    fleet::FleetOptions options;
    options.workers = workers;
    options.cells = 4;
    // Squeeze the cells so queues persist across ticks — the outage must
    // catch transfers in flight for the re-issue path to fire.
    options.cell.cell_bandwidth_kbps = 192.0;
    options.cell.client_bandwidth_kbps = 96.0;
    // Kill every cell in turn; whichever is populated strands transfers.
    options.cell_outages.push_back({0, 4.0, 5.0});
    options.cell_outages.push_back({1, 10.0, 5.0});
    options.cell_outages.push_back({2, 16.0, 5.0});
    options.cell_outages.push_back({3, 22.0, 5.0});
    fleet::FleetEngine engine(*system_, options, RoamingFleet(8, 30));
    return engine.Run();
  };
  const fleet::FleetResult result = run(8);
  // Every client finished its tour despite the rolling blackout.
  for (const fleet::ClientResult& client : result.clients) {
    EXPECT_EQ(client.metrics.frames, 30);
  }
  EXPECT_GT(result.failovers, 0);
  EXPECT_GT(result.reissued_transfers, 0);
  EXPECT_GT(result.reissued_bytes, 0);
  // The chaos invariants the harness sweeps: no desyncs, no duplicate
  // deliveries, no stranded waiters, no unresolved exchanges.
  EXPECT_EQ(result.chaos_session_desyncs, 0);
  EXPECT_EQ(result.chaos_duplicate_deliveries, 0);
  EXPECT_EQ(result.chaos_stranded_waiters, 0);
  EXPECT_EQ(result.chaos_unresolved_exchanges, 0);
  EXPECT_EQ(TopologyJson(run(1)), TopologyJson(result));
}

// Streaming session isolation must survive migration: identical twins
// that hand over mid-run still each receive the full record stream, and
// the server still tracks one session per client.
TEST_F(FleetEngineTest, SessionsStayIsolatedAcrossHandover) {
  std::vector<fleet::ClientSpec> specs(2);
  specs[0].id = 0;
  specs[1].id = 1;
  for (fleet::ClientSpec& spec : specs) {
    spec.kind = fleet::ClientKind::kStreaming;
    spec.frames = 25;
    spec.seed = 5;
    spec.tour_seed = 9;
    spec.speed = 0.9;  // roam fast enough to cross cells
    spec.query_fraction = 0.3;
  }
  fleet::FleetOptions options;
  options.workers = 2;
  options.cells = 4;
  options.cell_outages.push_back({0, 3.0, 4.0});
  options.cell_outages.push_back({1, 3.0, 4.0});
  fleet::FleetEngine engine(*system_, options, std::move(specs));
  const fleet::FleetResult result = engine.Run();
  ASSERT_EQ(result.clients.size(), 2u);
  EXPECT_GT(result.handovers, 0);
  const core::RunMetrics& first = result.clients[0].metrics;
  const core::RunMetrics& second = result.clients[1].metrics;
  EXPECT_GT(first.records_delivered, 0);
  EXPECT_EQ(first.records_delivered, second.records_delivered);
  EXPECT_EQ(first.demand_bytes, second.demand_bytes);
  const server::ClientSession* s0 = engine.sessions().Find(0);
  const server::ClientSession* s1 = engine.sessions().Find(1);
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(static_cast<int64_t>(s0->delivered.size()),
            first.records_delivered);
  EXPECT_EQ(static_cast<int64_t>(s1->delivered.size()),
            second.records_delivered);
  EXPECT_EQ(result.chaos_session_desyncs, 0);
  EXPECT_EQ(result.chaos_duplicate_deliveries, 0);
}

// ---------------------------------------------------------------------------
// Handover hysteresis

// Cell-edge ping-pong: with the dwell at 1 (the historical immediate
// handover) a client hugging a border flips serving cells on every
// routing wobble; requiring the pull to persist for a few rounds
// suppresses the flip-flops without losing the real crossings.
TEST_F(FleetEngineTest, HandoverDwellSuppressesPingPong) {
  // A fast co-moving group with large seat jitter: whenever the shared
  // base trajectory runs near a cell border, the members' per-frame
  // drift flutters them back and forth across it — the canonical
  // ping-pong workload.
  auto wobblers = [](int32_t members, int32_t frames) {
    std::vector<fleet::ClientSpec> specs;
    for (int32_t i = 0; i < members; ++i) {
      fleet::ClientSpec spec;
      spec.id = i;
      spec.kind = fleet::ClientKind::kStreaming;
      spec.tour_kind = workload::TourKind::kPedestrian;
      spec.speed = 0.9;
      spec.frames = frames;
      spec.seed = 60 + static_cast<uint64_t>(i);
      // A base trajectory that hugs a cell border for the whole
      // walk (found by scanning seeds), so seat drift keeps
      // crossing it.
      spec.tour_seed = 35;
      spec.group_member = i;
      spec.group_position_jitter_m = 400.0;
      spec.query_fraction = 0.25;
      specs.push_back(spec);
    }
    return specs;
  };
  auto run = [&](int32_t dwell) {
    fleet::FleetOptions options;
    options.workers = 4;
    options.cells = 4;
    options.handover_dwell_rounds = dwell;
    fleet::FleetEngine engine(*system_, options, wobblers(12, 60));
    return engine.Run();
  };
  const fleet::FleetResult immediate = run(1);
  const fleet::FleetResult dwelled = run(3);
  // Same tours, same delivered frames — hysteresis only re-times the
  // switches.
  EXPECT_EQ(dwelled.aggregate.frames, immediate.aggregate.frames);
  EXPECT_GT(immediate.handovers, 0);
  // Genuine crossings still hand over, oscillations do not.
  EXPECT_GT(dwelled.handovers, 0);
  EXPECT_LT(dwelled.handovers, immediate.handovers);
  // Hysteresis must stay deterministic across worker counts too.
  fleet::FleetOptions serial;
  serial.workers = 1;
  serial.cells = 4;
  serial.handover_dwell_rounds = 3;
  fleet::FleetEngine replay(*system_, serial, wobblers(12, 60));
  EXPECT_EQ(TopologyJson(replay.Run()), TopologyJson(dwelled));
}

// ---------------------------------------------------------------------------
// Co-moving groups

// Four streaming clients riding one group trajectory (seat-jittered
// copies of a shared base): their windows overlap for the whole tour,
// so cross-client coalescing keeps firing even though no two tours are
// byte-identical.
std::vector<fleet::ClientSpec> GroupFleet(int32_t members, int32_t frames) {
  std::vector<fleet::ClientSpec> specs;
  for (int32_t i = 0; i < members; ++i) {
    fleet::ClientSpec spec;
    spec.id = i;
    spec.kind = fleet::ClientKind::kStreaming;
    spec.frames = frames;
    spec.seed = 40 + static_cast<uint64_t>(i);
    spec.tour_seed = 77;  // shared base trajectory
    spec.group_member = i;
    spec.query_fraction = 0.3;
    specs.push_back(spec);
  }
  return specs;
}

TEST_F(FleetEngineTest, GroupTourMembersCoalesceDespiteJitter) {
  fleet::FleetOptions options;
  options.workers = 4;
  options.coalesce.enabled = true;
  fleet::FleetEngine engine(*system_, options, GroupFleet(4, 25));
  const fleet::FleetResult result = engine.Run();
  // The group's overlapping windows share carriers.
  EXPECT_GT(result.coalesce_hits, 0);
  EXPECT_GT(result.coalesce_bytes_saved, 0);
  // The members are genuinely distinct clients, not clones: seat jitter
  // gives each a different trajectory and different traffic.
  ASSERT_EQ(result.clients.size(), 4u);
  EXPECT_NE(core::RunMetricsJson(result.clients[0].metrics),
            core::RunMetricsJson(result.clients[1].metrics));
}

// group_member = -1 (the default) must stay a strict passthrough to the
// historical independent tour.
TEST_F(FleetEngineTest, UngroupedSpecIsStrictPassthrough) {
  auto run = [&](bool touch_defaults) {
    std::vector<fleet::ClientSpec> specs = GroupFleet(3, 15);
    for (fleet::ClientSpec& spec : specs) {
      spec.group_member = -1;
      if (touch_defaults) {
        // Group knobs are inert while group_member is -1.
        spec.group_position_jitter_m = 500.0;
        spec.group_speed_jitter = 0.5;
      }
    }
    fleet::FleetOptions options;
    options.workers = 2;
    fleet::FleetEngine engine(*system_, options, std::move(specs));
    return FleetJson(engine.Run());
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Adaptive resolution ladder (fleet integration)

std::string AbrJson(const fleet::FleetResult& result) {
  std::string out = FleetJson(result);
  for (const fleet::ClientResult& client : result.clients) {
    out += "\n" + std::to_string(client.spec.id) + ":abr " +
           std::to_string(client.abr.ladder_step) + "/" +
           std::to_string(client.abr.step_ups) + "/" +
           std::to_string(client.abr.top_ups) + "/" +
           std::to_string(client.abr.map_calls) + "/" +
           std::to_string(client.abr.goodput_ewma_bps) + "/" +
           std::to_string(client.abr.resolution_sum);
  }
  out += "\nabr:" + std::to_string(result.abr_step_ups) + "/" +
         std::to_string(result.abr_top_ups) + "/" +
         std::to_string(result.abr_max_ladder_step);
  return out;
}

// ABR off (the default) leaves no trace anywhere: every snapshot and
// every aggregate counter stays zero.
TEST_F(FleetEngineTest, AbrOffLeavesNoTrace) {
  fleet::FleetOptions options;
  options.workers = 2;
  fleet::FleetEngine engine(
      *system_, options,
      fleet::FleetEngine::MakeMixedFleet(6, /*frames=*/15, /*speed=*/0.5,
                                         /*seed=*/3));
  const fleet::FleetResult result = engine.Run();
  EXPECT_EQ(result.abr_step_ups, 0);
  EXPECT_EQ(result.abr_top_ups, 0);
  EXPECT_EQ(result.abr_max_ladder_step, 0);
  for (const fleet::ClientResult& client : result.clients) {
    EXPECT_EQ(client.abr.ladder_step, 0);
    EXPECT_EQ(client.abr.step_ups, 0);
    EXPECT_EQ(client.abr.top_ups, 0);
    EXPECT_EQ(client.abr.map_calls, 0);
    EXPECT_DOUBLE_EQ(client.abr.resolution_sum, 0.0);
  }
}

// A squeezed cell with admission on: the ladder must actually engage
// (climbs happen) and the whole adaptive trajectory — per-client rungs,
// EWMAs, request traces — must replay byte-identically at any worker
// count, since every ladder decision runs in the serial phases.
TEST_F(FleetEngineTest, AbrLadderEngagesAndStaysBitIdenticalAcrossWorkers) {
  std::string reference;
  for (const int workers : {1, 8}) {
    fleet::FleetOptions options;
    options.workers = workers;
    options.cell.cell_bandwidth_kbps = 96.0;
    options.cell.client_bandwidth_kbps = 64.0;
    options.admission.enabled = true;
    options.abr.enabled = true;
    options.abr.ladder.ladder_steps = 3;
    auto specs = fleet::FleetEngine::MakeMixedFleet(6, /*frames=*/20,
                                                    /*speed=*/0.5,
                                                    /*seed=*/8);
    for (fleet::ClientSpec& spec : specs) spec.query_fraction = 0.3;
    fleet::FleetEngine engine(*system_, options, std::move(specs));
    const fleet::FleetResult result = engine.Run();
    EXPECT_GT(result.abr_step_ups, 0);
    EXPECT_GT(result.abr_max_ladder_step, 0);
    const std::string json = AbrJson(result);
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "diverged at workers=" << workers;
    }
  }
}

// ---------------------------------------------------------------------------
// Pool warming

// Background pool warming must be invisible to everything a client
// observes: on a disk-backed sharded fleet under real eviction
// pressure, all four of {workers 1, 8} x {warm off, on} produce
// byte-identical per-client and aggregate metrics (one shared
// reference), because speculative reads only ever change which pages
// are resident — never results, node accesses, or timing. The warm
// runs also vary the I/O pool width, which must be equally invisible.
TEST(FleetWarmingTest, DiskFleetBitIdenticalAcrossWorkersAndWarming) {
  std::string reference;
  for (const bool warm : {false, true}) {
    for (const int workers : {1, 8}) {
      const std::string path = ::testing::TempDir() + "/fleet_warm_" +
                               (warm ? "on" : "off") + "_" +
                               std::to_string(workers) + ".pages";
      core::System::Config config = SmallConfig();
      config.shards = 4;
      config.storage.store = storage::StoreKind::kDisk;
      config.storage.path = path;
      config.storage.evict = storage::EvictPolicy::kMotion;
      config.storage.pool_pages = 64;  // small: keeps eviction live
      config.storage.warm = warm;
      config.storage.warm_budget = 8;
      config.storage.warm_workers = workers == 8 ? 4 : 1;
      std::remove(path.c_str());
      std::remove((path + ".shardmap").c_str());
      for (int s = 0; s < 4; ++s) {
        std::remove((path + ".shard" + std::to_string(s)).c_str());
      }
      auto system = core::System::Create(config);
      ASSERT_TRUE(system.ok());
      ASSERT_EQ((*system)->server().pool_warming_enabled(), warm);

      fleet::FleetOptions options;
      options.workers = workers;
      fleet::FleetEngine engine(
          **system, options,
          fleet::FleetEngine::MakeMixedFleet(9, /*frames=*/25, /*speed=*/0.5,
                                             /*seed=*/0));
      const std::string json = FleetJson(engine.Run());
      if (reference.empty()) {
        reference = json;
      } else {
        EXPECT_EQ(json, reference)
            << "diverged at workers=" << workers << " warm=" << warm;
      }

      // The warm runs must actually warm — otherwise the comparison
      // above vacuously checks two cold configurations.
      int64_t issued = 0;
      for (const auto& s : (*system)->server().PoolStats()) {
        issued += s.pool.prefetch_issued;
      }
      if (warm) {
        EXPECT_GT(issued, 0);
      } else {
        EXPECT_EQ(issued, 0);
      }
    }
  }
}

}  // namespace
}  // namespace mars
