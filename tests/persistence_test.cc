#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "server/object_db.h"
#include "server/persistence.h"
#include "wavelet/reconstruct.h"
#include "workload/scene.h"

namespace mars::server {
namespace {

// --- ByteWriter / ByteReader -------------------------------------------------

TEST(SerializeTest, PrimitivesRoundTrip) {
  common::ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU32(123456789);
  w.WriteU64(0xDEADBEEFCAFEBABEULL);
  w.WriteI32(-42);
  w.WriteI64(-1234567890123LL);
  w.WriteDouble(3.14159);
  w.WriteFloat(2.5f);
  w.WriteString("hello mars");

  common::ByteReader r(w.buffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  double d;
  float f;
  std::string s;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI32(&i32).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  ASSERT_TRUE(r.ReadFloat(&f).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 123456789u);
  EXPECT_EQ(u64, 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123LL);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_FLOAT_EQ(f, 2.5f);
  EXPECT_EQ(s, "hello mars");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, VarintBoundaries) {
  common::ByteWriter w;
  const uint64_t values[] = {0, 1, 127, 128, 16383, 16384,
                             UINT64_MAX};
  for (uint64_t v : values) w.WriteVarU64(v);
  common::ByteReader r(w.buffer());
  for (uint64_t expected : values) {
    uint64_t got;
    ASSERT_TRUE(r.ReadVarU64(&got).ok());
    EXPECT_EQ(got, expected);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, ReadsPastEndFail) {
  common::ByteWriter w;
  w.WriteU32(7);
  common::ByteReader r(w.buffer());
  uint64_t u64;
  EXPECT_FALSE(r.ReadU64(&u64).ok());
  std::string s;
  EXPECT_FALSE(r.ReadString(&s).ok());
}

TEST(SerializeTest, TruncatedStringFails) {
  common::ByteWriter w;
  w.WriteVarU64(1000);  // claims a 1000-byte string
  w.WriteU8('x');
  common::ByteReader r(w.buffer());
  std::string s;
  EXPECT_FALSE(r.ReadString(&s).ok());
}

// --- Database persistence ---------------------------------------------------

workload::SceneOptions TinyScene() {
  workload::SceneOptions options;
  options.space = geometry::MakeBox2(0, 0, 1000, 1000);
  options.object_count = 4;
  options.levels = 2;
  options.seed = 33;
  return options;
}

TEST(PersistenceTest, RoundTripPreservesEverything) {
  auto original = workload::GenerateScene(TinyScene());
  ASSERT_TRUE(original.ok());

  const std::vector<uint8_t> bytes = SerializeDatabase(*original);
  auto restored = DeserializeDatabase(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored->object_count(), original->object_count());
  EXPECT_EQ(restored->total_bytes(), original->total_bytes());
  ASSERT_EQ(restored->records().size(), original->records().size());
  for (size_t i = 0; i < original->records().size(); ++i) {
    const auto& a = original->records()[i];
    const auto& b = restored->records()[i];
    EXPECT_EQ(a.object_id, b.object_id);
    EXPECT_EQ(a.coeff_id, b.coeff_id);
    EXPECT_DOUBLE_EQ(a.w, b.w);
    EXPECT_EQ(a.position, b.position);
    EXPECT_EQ(a.support_bounds, b.support_bounds);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  }
  // Geometry survives exactly: reconstruction matches bit-for-bit.
  for (int32_t obj = 0; obj < original->object_count(); ++obj) {
    const mesh::Mesh a = wavelet::Reconstruct(original->object(obj), 0.0);
    const mesh::Mesh b = wavelet::Reconstruct(restored->object(obj), 0.0);
    EXPECT_DOUBLE_EQ(wavelet::MaxVertexDistance(a, b), 0.0);
  }
}

TEST(PersistenceTest, RejectsGarbage) {
  std::vector<uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(DeserializeDatabase(garbage).ok());
  EXPECT_FALSE(DeserializeDatabase({}).ok());
}

TEST(PersistenceTest, RejectsTruncation) {
  auto db = workload::GenerateScene(TinyScene());
  ASSERT_TRUE(db.ok());
  std::vector<uint8_t> bytes = SerializeDatabase(*db);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DeserializeDatabase(bytes).ok());
}

TEST(PersistenceTest, RejectsTrailingBytes) {
  auto db = workload::GenerateScene(TinyScene());
  ASSERT_TRUE(db.ok());
  std::vector<uint8_t> bytes = SerializeDatabase(*db);
  bytes.push_back(0);
  EXPECT_FALSE(DeserializeDatabase(bytes).ok());
}

TEST(PersistenceTest, RejectsWrongVersion) {
  auto db = workload::GenerateScene(TinyScene());
  ASSERT_TRUE(db.ok());
  std::vector<uint8_t> bytes = SerializeDatabase(*db);
  bytes[4] = 0xFF;  // clobber the version field
  const auto result = DeserializeDatabase(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
}

TEST(PersistenceTest, FileRoundTrip) {
  auto db = workload::GenerateScene(TinyScene());
  ASSERT_TRUE(db.ok());
  const std::string path = ::testing::TempDir() + "/mars_db_test.bin";
  ASSERT_TRUE(SaveDatabase(*db, path).ok());
  auto loaded = LoadDatabase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->object_count(), db->object_count());
  EXPECT_EQ(loaded->total_bytes(), db->total_bytes());
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadDatabase("/nonexistent/path/db.bin").ok());
}

}  // namespace
}  // namespace mars::server
