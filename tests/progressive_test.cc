#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/vec.h"
#include "mesh/mesh.h"
#include "mesh/primitives.h"
#include "mesh/progressive.h"
#include "mesh/subdivide.h"
#include "wavelet/reconstruct.h"

namespace mars::mesh {
namespace {

// A detailed test mesh: subdivided, displaced building.
Mesh DetailedMesh(int levels, uint64_t seed) {
  common::Rng rng(seed);
  Mesh m = MakeBuilding(20, 30, 15, 5);
  for (int j = 0; j < levels; ++j) {
    Subdivision sub = Subdivide(m);
    for (const OddVertex& odd : sub.odd_vertices) {
      sub.mesh.mutable_vertex(odd.vertex) +=
          geometry::Vec3{rng.Normal(), rng.Normal(), rng.Normal()} * 0.4;
    }
    m = std::move(sub.mesh);
  }
  return m;
}

// Canonical multiset of faces (sorted vertex triples of positions).
std::multiset<std::array<double, 9>> FaceSet(const Mesh& m) {
  std::multiset<std::array<double, 9>> out;
  for (const Face& f : m.faces()) {
    std::array<std::array<double, 3>, 3> corners;
    for (int k = 0; k < 3; ++k) {
      const geometry::Vec3& v = m.vertex(f[k]);
      corners[k] = {v.x, v.y, v.z};
    }
    std::sort(corners.begin(), corners.end());
    std::array<double, 9> key;
    for (int k = 0; k < 3; ++k) {
      for (int d = 0; d < 3; ++d) key[3 * k + d] = corners[k][d];
    }
    out.insert(key);
  }
  return out;
}

TEST(ProgressiveMeshTest, FullDetailReproducesOriginal) {
  const Mesh fine = DetailedMesh(2, 3);
  auto pm = ProgressiveMesh::Build(fine, 10);
  ASSERT_TRUE(pm.ok());
  EXPECT_GT(pm->split_count(), 0);
  const Mesh rebuilt = pm->MeshAtDetail(pm->split_count());
  // Same geometry as a face multiset (vertex order may differ after
  // compaction).
  EXPECT_EQ(rebuilt.face_count(), fine.face_count());
  EXPECT_EQ(FaceSet(rebuilt), FaceSet(fine));
}

TEST(ProgressiveMeshTest, BaseRespectsTarget) {
  const Mesh fine = DetailedMesh(2, 5);
  for (int target : {10, 30, 80}) {
    auto pm = ProgressiveMesh::Build(fine, target);
    ASSERT_TRUE(pm.ok());
    const Mesh base = pm->MeshAtDetail(0);
    // The greedy simplifier can stop slightly above the target when
    // remaining collapses are invalid, but should land close.
    EXPECT_LE(base.vertex_count(), target + 8);
    EXPECT_GE(base.vertex_count(), 4);
    EXPECT_TRUE(base.Validate().ok());
  }
}

TEST(ProgressiveMeshTest, EveryPrefixIsValid) {
  const Mesh fine = DetailedMesh(2, 7);
  auto pm = ProgressiveMesh::Build(fine, 12);
  ASSERT_TRUE(pm.ok());
  int32_t prev_vertices = 0;
  for (int32_t s = 0; s <= pm->split_count();
       s += std::max(1, pm->split_count() / 13)) {
    const Mesh m = pm->MeshAtDetail(s);
    ASSERT_TRUE(m.Validate().ok()) << "at detail " << s;
    // No duplicate faces at any stage.
    const auto faces = FaceSet(m);
    std::set<std::array<double, 9>> unique(faces.begin(), faces.end());
    EXPECT_EQ(unique.size(), faces.size()) << "at detail " << s;
    // Vertices grow monotonically (one per split).
    EXPECT_GE(m.vertex_count(), prev_vertices);
    prev_vertices = m.vertex_count();
  }
}

TEST(ProgressiveMeshTest, SplitAddsExactlyOneVertex) {
  const Mesh fine = DetailedMesh(1, 9);
  auto pm = ProgressiveMesh::Build(fine, 6);
  ASSERT_TRUE(pm.ok());
  for (int32_t s = 1; s <= pm->split_count(); ++s) {
    EXPECT_EQ(pm->MeshAtDetail(s).vertex_count(),
              pm->MeshAtDetail(s - 1).vertex_count() + 1);
  }
}

TEST(ProgressiveMeshTest, WireBytesAccounting) {
  const Mesh fine = DetailedMesh(2, 11);
  auto pm = ProgressiveMesh::Build(fine, 10);
  ASSERT_TRUE(pm.ok());
  EXPECT_GT(pm->BaseWireBytes(), 0);
  EXPECT_EQ(pm->SplitsWireBytes(0), 0);
  int64_t prev = 0;
  for (int32_t s = 1; s <= pm->split_count(); ++s) {
    const int64_t total = pm->SplitsWireBytes(s);
    EXPECT_GT(total, prev);  // each split costs something
    prev = total;
  }
  // Each split carries at least ids + position.
  EXPECT_GE(pm->SplitsWireBytes(pm->split_count()),
            20LL * pm->split_count());
}

TEST(ProgressiveMeshTest, InvalidMeshRejected) {
  Mesh bad({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}, {{0, 1, 7}});
  EXPECT_FALSE(ProgressiveMesh::Build(bad, 3).ok());
}

TEST(ProgressiveMeshTest, OpenTerrainMeshSimplifies) {
  // Boundary (open) meshes: half-edge collapses must stay valid on a
  // terrain patch with displaced interior vertices.
  common::Rng rng(19);
  Mesh terrain = MakeTerrainPatch(6, 6, 60, 60);
  for (int32_t v = 0; v < terrain.vertex_count(); ++v) {
    terrain.mutable_vertex(v).z = rng.Uniform(0, 5);
  }
  auto pm = ProgressiveMesh::Build(terrain, 8);
  ASSERT_TRUE(pm.ok());
  EXPECT_GT(pm->split_count(), 0);
  for (int32_t s = 0; s <= pm->split_count(); s += 7) {
    EXPECT_TRUE(pm->MeshAtDetail(s).Validate().ok()) << "detail " << s;
  }
  const Mesh rebuilt = pm->MeshAtDetail(pm->split_count());
  EXPECT_EQ(FaceSet(rebuilt), FaceSet(terrain));
}

TEST(ProgressiveMeshTest, SimplificationReducesError) {
  // More splits => geometrically closer to the original (coarse proxy:
  // mean distance from original vertices to the nearest detail vertex).
  const Mesh fine = DetailedMesh(2, 13);
  auto pm = ProgressiveMesh::Build(fine, 10);
  ASSERT_TRUE(pm.ok());
  auto proxy_error = [&fine](const Mesh& approx) {
    double total = 0;
    for (const geometry::Vec3& v : fine.vertices()) {
      double best = 1e18;
      for (const geometry::Vec3& a : approx.vertices()) {
        best = std::min(best, (v - a).SquaredNorm());
      }
      total += std::sqrt(best);
    }
    return total / fine.vertex_count();
  };
  const double coarse = proxy_error(pm->MeshAtDetail(0));
  const double mid = proxy_error(pm->MeshAtDetail(pm->split_count() / 2));
  const double full = proxy_error(pm->MeshAtDetail(pm->split_count()));
  EXPECT_LT(full, coarse);
  EXPECT_LE(full, 1e-9);
  EXPECT_LE(mid, coarse + 1e-9);
}

}  // namespace
}  // namespace mars::mesh
