#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/units.h"

namespace mars::common {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, FactoryFunctionsSetExpectedCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return InternalError("inner"); };
  auto outer = [&]() -> Status {
    MARS_RETURN_IF_ERROR(fails());
    return OkStatus();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = []() -> Status { return OkStatus(); };
  auto outer = [&]() -> Status {
    MARS_RETURN_IF_ERROR(succeeds());
    return InvalidArgumentError("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInvalidArgument);
}

// --- StatusOr ---------------------------------------------------------------

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("gone");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  std::vector<int> taken = std::move(v).value();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> StatusOr<int> {
    if (fail) return InternalError("nope");
    return 7;
  };
  auto outer = [&](bool fail) -> Status {
    MARS_ASSIGN_OR_RETURN(int x, inner(fail));
    EXPECT_EQ(x, 7);
    return OkStatus();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(true).code(), StatusCode::kInternal);
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.5, 8.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 8.25);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all 6 values hit
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(4, 4), 4);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(12);
  Rng child = a.Fork();
  // The child should not replay the parent's stream.
  Rng b(12);
  b.NextUint64();  // parent consumed one value for the fork
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

// --- ZipfSampler -------------------------------------------------------------

TEST(ZipfSamplerTest, UniformWhenSkewZero) {
  Rng rng(13);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(ZipfSamplerTest, SkewFavorsLowRanks) {
  Rng rng(14);
  ZipfSampler zipf(10, 1.2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(ZipfSamplerTest, SamplesInRange) {
  Rng rng(15);
  ZipfSampler zipf(3, 0.9);
  for (int i = 0; i < 1000; ++i) {
    const int s = zipf.Sample(rng);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 3);
  }
}

// --- Units -------------------------------------------------------------------

TEST(UnitsTest, KbpsConversion) {
  EXPECT_DOUBLE_EQ(KbpsToBytesPerSecond(256.0), 32000.0);
  EXPECT_DOUBLE_EQ(KbpsToBytesPerSecond(8.0), 1000.0);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.50 KB");
  EXPECT_EQ(FormatBytes(3 * kMiB), "3.00 MB");
}

}  // namespace
}  // namespace mars::common
