#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "mesh/adjacency.h"
#include "mesh/mesh.h"
#include "mesh/primitives.h"
#include "mesh/subdivide.h"

namespace mars::mesh {
namespace {

// --- Primitives -----------------------------------------------------------

TEST(PrimitivesTest, TetrahedronIsValidClosedManifold) {
  const Mesh m = MakeTetrahedron();
  EXPECT_EQ(m.vertex_count(), 4);
  EXPECT_EQ(m.face_count(), 4);
  EXPECT_TRUE(m.Validate().ok());
  // Euler characteristic of a sphere-like surface: V - E + F = 2.
  EXPECT_EQ(m.vertex_count() - CountEdges(m) + m.face_count(), 2);
}

TEST(PrimitivesTest, OctahedronEuler) {
  const Mesh m = MakeOctahedron();
  EXPECT_EQ(m.vertex_count(), 6);
  EXPECT_EQ(m.face_count(), 8);
  EXPECT_EQ(CountEdges(m), 12);
  EXPECT_EQ(m.vertex_count() - CountEdges(m) + m.face_count(), 2);
  EXPECT_TRUE(m.Validate().ok());
}

TEST(PrimitivesTest, BoxGeometry) {
  const Mesh m = MakeBox(2, 3, 4);
  EXPECT_EQ(m.vertex_count(), 8);
  EXPECT_EQ(m.face_count(), 12);
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.vertex_count() - CountEdges(m) + m.face_count(), 2);
  const geometry::Box3 bounds = m.Bounds();
  EXPECT_EQ(bounds, geometry::MakeBox3(0, 0, 0, 2, 3, 4));
  // Surface area of a 2x3x4 box: 2(2·3 + 3·4 + 2·4) = 52.
  EXPECT_NEAR(m.SurfaceArea(), 52.0, 1e-9);
}

TEST(PrimitivesTest, BuildingIsValidClosedManifold) {
  const Mesh m = MakeBuilding(20, 30, 15, 5);
  EXPECT_EQ(m.vertex_count(), 9);   // 8 box corners + apex
  EXPECT_EQ(m.face_count(), 14);    // 12 - 2 top + 4 roof
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.vertex_count() - CountEdges(m) + m.face_count(), 2);
  const geometry::Box3 bounds = m.Bounds();
  EXPECT_DOUBLE_EQ(bounds.hi(2), 20.0);  // walls 15 + roof 5
}

TEST(PrimitivesTest, TerrainPatchIsOpenAndValid) {
  const Mesh m = MakeTerrainPatch(4, 3, 100, 60);
  EXPECT_EQ(m.vertex_count(), 5 * 4);
  EXPECT_EQ(m.face_count(), 4 * 3 * 2);
  EXPECT_TRUE(m.Validate().ok());
  // Open surface with boundary: V - E + F = 1 for a disk.
  EXPECT_EQ(m.vertex_count() - CountEdges(m) + m.face_count(), 1);
  EXPECT_NEAR(m.SurfaceArea(), 100.0 * 60.0, 1e-9);
}

TEST(PrimitivesTest, TerrainPatchMinimumSize) {
  const Mesh m = MakeTerrainPatch(1, 1, 10, 10);
  EXPECT_EQ(m.vertex_count(), 4);
  EXPECT_EQ(m.face_count(), 2);
  EXPECT_TRUE(m.Validate().ok());
}

TEST(SubdivideTest, OpenMeshesSubdivide) {
  // Boundary edges split like interior ones; Euler characteristic of the
  // disk is preserved.
  const Mesh base = MakeTerrainPatch(2, 2, 10, 10);
  const Subdivision sub = Subdivide(base);
  EXPECT_EQ(sub.mesh.vertex_count(),
            base.vertex_count() + CountEdges(base));
  EXPECT_EQ(sub.mesh.face_count(), 4 * base.face_count());
  EXPECT_TRUE(sub.mesh.Validate().ok());
  EXPECT_EQ(sub.mesh.vertex_count() - CountEdges(sub.mesh) +
                sub.mesh.face_count(),
            1);
}

TEST(MeshTest, ValidateCatchesOutOfRangeIndex) {
  Mesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}, {{0, 1, 5}});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(MeshTest, ValidateCatchesDegenerateFace) {
  Mesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}, {{0, 1, 1}});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(MeshTest, TranslateAndScale) {
  Mesh m = MakeBox(1, 1, 1);
  m.Translate({10, 20, 30});
  EXPECT_EQ(m.Bounds(), geometry::MakeBox3(10, 20, 30, 11, 21, 31));
  Mesh s = MakeBox(1, 1, 1);
  s.Scale(3.0);
  EXPECT_EQ(s.Bounds(), geometry::MakeBox3(0, 0, 0, 3, 3, 3));
}

// --- Adjacency --------------------------------------------------------------

TEST(AdjacencyTest, TetrahedronIsCompleteGraph) {
  const Mesh m = MakeTetrahedron();
  const VertexAdjacency adj(m);
  for (int32_t v = 0; v < 4; ++v) {
    EXPECT_EQ(adj.Neighbors(v).size(), 3u);
    for (int32_t u = 0; u < 4; ++u) {
      EXPECT_EQ(adj.AreAdjacent(v, u), v != u);
    }
  }
}

TEST(AdjacencyTest, OctahedronDegreeFour) {
  const VertexAdjacency adj(MakeOctahedron());
  for (int32_t v = 0; v < 6; ++v) {
    EXPECT_EQ(adj.Neighbors(v).size(), 4u);
  }
  // Antipodal vertices are not adjacent.
  EXPECT_FALSE(adj.AreAdjacent(0, 1));
  EXPECT_FALSE(adj.AreAdjacent(2, 3));
  EXPECT_FALSE(adj.AreAdjacent(4, 5));
}

TEST(AdjacencyTest, NeighborsSortedUnique) {
  const VertexAdjacency adj(MakeBuilding(10, 10, 10, 3));
  for (int32_t v = 0; v < adj.vertex_count(); ++v) {
    const auto& n = adj.Neighbors(v);
    for (size_t i = 1; i < n.size(); ++i) {
      EXPECT_LT(n[i - 1], n[i]);
    }
  }
}

TEST(EdgeMapTest, IndicesDenseAndSymmetric) {
  const Mesh m = MakeOctahedron();
  const EdgeMap edges(m);
  EXPECT_EQ(edges.edge_count(), 12);
  std::set<int32_t> seen;
  for (int32_t e = 0; e < edges.edge_count(); ++e) {
    const auto [a, b] = edges.edge(e);
    EXPECT_EQ(edges.IndexOf(a, b), e);
    EXPECT_EQ(edges.IndexOf(b, a), e);
    seen.insert(e);
  }
  EXPECT_EQ(seen.size(), 12u);
  EXPECT_EQ(edges.IndexOf(0, 1), -1);  // antipodal: no edge
}

// --- Subdivision ------------------------------------------------------------

// For a closed triangle mesh, one 1:4 subdivision gives V' = V + E,
// E' = 2E + 3F, F' = 4F.
class SubdivideCountsTest : public ::testing::TestWithParam<int> {
 protected:
  Mesh BaseFor(int which) const {
    switch (which) {
      case 0:
        return MakeTetrahedron();
      case 1:
        return MakeOctahedron();
      case 2:
        return MakeBox(1, 2, 3);
      default:
        return MakeBuilding(10, 12, 8, 3);
    }
  }
};

TEST_P(SubdivideCountsTest, CountsFollowRegularSubdivision) {
  const Mesh base = BaseFor(GetParam());
  const int64_t v = base.vertex_count();
  const int64_t e = CountEdges(base);
  const int64_t f = base.face_count();
  const Subdivision sub = Subdivide(base);
  EXPECT_EQ(sub.mesh.vertex_count(), v + e);
  EXPECT_EQ(sub.mesh.face_count(), 4 * f);
  EXPECT_EQ(CountEdges(sub.mesh), 2 * e + 3 * f);
  EXPECT_EQ(static_cast<int64_t>(sub.odd_vertices.size()), e);
  EXPECT_TRUE(sub.mesh.Validate().ok());
  // Euler characteristic is preserved.
  EXPECT_EQ(sub.mesh.vertex_count() - CountEdges(sub.mesh) +
                sub.mesh.face_count(),
            v - e + f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SubdivideCountsTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(SubdivideTest, EvenVerticesKeepIndicesAndPositions) {
  const Mesh base = MakeOctahedron();
  const Subdivision sub = Subdivide(base);
  for (int32_t i = 0; i < base.vertex_count(); ++i) {
    EXPECT_EQ(sub.mesh.vertex(i), base.vertex(i));
  }
}

TEST(SubdivideTest, OddVerticesAtParentMidpoints) {
  const Mesh base = MakeTetrahedron();
  const Subdivision sub = Subdivide(base);
  for (const OddVertex& odd : sub.odd_vertices) {
    const geometry::Vec3 expected = geometry::Midpoint(
        base.vertex(odd.parent_a), base.vertex(odd.parent_b));
    EXPECT_EQ(sub.mesh.vertex(odd.vertex), expected);
    EXPECT_GE(odd.vertex, base.vertex_count());
  }
}

TEST(SubdivideTest, SurfaceAreaPreservedByMidpointSplit) {
  // Pure midpoint subdivision does not change the surface.
  const Mesh base = MakeBuilding(10, 10, 10, 4);
  const Subdivision sub = Subdivide(base);
  EXPECT_NEAR(sub.mesh.SurfaceArea(), base.SurfaceArea(), 1e-9);
}

TEST(SubdivideTest, DeterministicOddOrder) {
  const Mesh base = MakeOctahedron();
  const Subdivision a = Subdivide(base);
  const Subdivision b = Subdivide(base);
  ASSERT_EQ(a.odd_vertices.size(), b.odd_vertices.size());
  for (size_t i = 0; i < a.odd_vertices.size(); ++i) {
    EXPECT_EQ(a.odd_vertices[i].vertex, b.odd_vertices[i].vertex);
    EXPECT_EQ(a.odd_vertices[i].parent_a, b.odd_vertices[i].parent_a);
    EXPECT_EQ(a.odd_vertices[i].parent_b, b.odd_vertices[i].parent_b);
  }
}

TEST(SubdivideTest, RepeatedSubdivisionGrowsGeometrically) {
  Mesh m = MakeBuilding(10, 10, 10, 3);
  const int64_t f0 = m.face_count();
  for (int level = 1; level <= 3; ++level) {
    m = Subdivide(m).mesh;
    EXPECT_EQ(m.face_count(), f0 * (1LL << (2 * level)));
    ASSERT_TRUE(m.Validate().ok());
  }
}

}  // namespace
}  // namespace mars::mesh
