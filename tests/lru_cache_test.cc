// Dedicated coverage for buffer::LruCache: eviction order, the
// capacity-1 (single-slot) regime, re-insert refresh semantics, and the
// LeastRecent peek the buffer pool's eviction loop relies on.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/lru_cache.h"

namespace mars::buffer {
namespace {

TEST(LruCacheTest, EvictsInLeastRecentlyUsedOrder) {
  LruCache<int> cache(3);
  EXPECT_TRUE(cache.Put(1, 1).empty());
  EXPECT_TRUE(cache.Put(2, 1).empty());
  EXPECT_TRUE(cache.Put(3, 1).empty());

  // 1 is now the oldest; inserting 4 must evict exactly it.
  std::vector<int> evicted = cache.Put(4, 1);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));

  // Touching 2 promotes it over 3; the next eviction takes 3.
  EXPECT_TRUE(cache.Touch(2));
  evicted = cache.Put(5, 1);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 3);
  EXPECT_TRUE(cache.Contains(2));
}

TEST(LruCacheTest, OversizedPutEvictsEverythingElse) {
  LruCache<int> cache(10);
  cache.Put(1, 4);
  cache.Put(2, 4);
  // An entry larger than the whole capacity is admitted alone.
  const std::vector<int> evicted = cache.Put(3, 25);
  EXPECT_EQ(evicted.size(), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.used_bytes(), 25);
}

TEST(LruCacheTest, CapacityOneHoldsExactlyTheNewestKey) {
  LruCache<std::string> cache(1);
  EXPECT_TRUE(cache.Put("a", 1).empty());
  std::vector<std::string> evicted = cache.Put("b", 1);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "a");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Contains("b"));

  // The sole (just-inserted) entry is protected: it never self-evicts,
  // even when it alone exceeds capacity.
  evicted = cache.Put("c", 5);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "b");
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_EQ(cache.used_bytes(), 5);
}

TEST(LruCacheTest, ReinsertRefreshesRecencyAndSize) {
  LruCache<int> cache(3);
  cache.Put(1, 1);
  cache.Put(2, 1);
  cache.Put(3, 1);

  // Re-inserting 1 refreshes it to most-recent, so 2 becomes the victim.
  EXPECT_TRUE(cache.Put(1, 1).empty());
  const std::vector<int> evicted = cache.Put(4, 1);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2);
  EXPECT_TRUE(cache.Contains(1));

  // Re-insert with a new size updates used_bytes in place (no duplicate
  // accounting), and shrinking never evicts.
  LruCache<int> sized(10);
  sized.Put(7, 8);
  EXPECT_EQ(sized.used_bytes(), 8);
  EXPECT_TRUE(sized.Put(7, 3).empty());
  EXPECT_EQ(sized.used_bytes(), 3);
  EXPECT_EQ(sized.size(), 1u);
}

TEST(LruCacheTest, TouchAndMissCounters) {
  LruCache<int> cache(2);
  EXPECT_FALSE(cache.Touch(1));
  cache.Put(1, 1);
  EXPECT_TRUE(cache.Touch(1));
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  // Contains is a pure probe: no recency change, no counter change.
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.hits(), 1);
}

TEST(LruCacheTest, LeastRecentPeeksWithoutEvicting) {
  LruCache<int> cache(3);
  int victim = 0;
  // Empty cache: nothing to report.
  EXPECT_FALSE(cache.LeastRecent(-1, &victim));

  cache.Put(1, 1);
  cache.Put(2, 1);
  cache.Put(3, 1);
  ASSERT_TRUE(cache.LeastRecent(-1, &victim));
  EXPECT_EQ(victim, 1);
  // Peeking does not evict or reorder.
  EXPECT_EQ(cache.size(), 3u);
  ASSERT_TRUE(cache.LeastRecent(-1, &victim));
  EXPECT_EQ(victim, 1);

  // Protecting the LRU key reports the next-oldest instead.
  ASSERT_TRUE(cache.LeastRecent(1, &victim));
  EXPECT_EQ(victim, 2);

  // A single resident entry that is itself protected leaves no victim.
  LruCache<int> one(1);
  one.Put(9, 1);
  EXPECT_FALSE(one.LeastRecent(9, &victim));
  ASSERT_TRUE(one.LeastRecent(-1, &victim));
  EXPECT_EQ(victim, 9);
}

TEST(LruCacheTest, EraseReleasesBytes) {
  LruCache<int> cache(4);
  cache.Put(1, 2);
  cache.Put(2, 2);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.used_bytes(), 2);
  EXPECT_EQ(cache.size(), 1u);
  // The freed room admits a new entry without eviction.
  EXPECT_TRUE(cache.Put(3, 2).empty());
}

}  // namespace
}  // namespace mars::buffer
