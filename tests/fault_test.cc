// Fault-injection layer and outage-tolerant retrieval: FaultSchedule
// window processes, SimulatedLink attempts under outage/dip, the bounded
// ReliableChannel, SharedMediumLink loss parity, and the end-to-end
// ack-based session reconciliation of the streaming and buffered clients.

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "client/buffered_client.h"
#include "client/streaming_client.h"
#include "common/status.h"
#include "core/system.h"
#include "geometry/box.h"
#include "net/fault.h"
#include "net/link.h"
#include "net/reliable_channel.h"
#include "net/shared_link.h"
#include "server/server.h"
#include "workload/scene.h"
#include "workload/tour.h"

namespace mars {
namespace {

using geometry::MakeBox2;

// --- FaultSchedule ------------------------------------------------------

TEST(FaultScheduleTest, AllQuietByDefault) {
  net::FaultSchedule fault;
  EXPECT_FALSE(fault.enabled());
  EXPECT_FALSE(fault.InOutage(10.0));
  EXPECT_DOUBLE_EQ(fault.OutageRemaining(10.0), 0.0);
  EXPECT_DOUBLE_EQ(fault.LossFactor(10.0), 1.0);
  EXPECT_DOUBLE_EQ(fault.BandwidthFactor(10.0), 1.0);
  EXPECT_TRUE(std::isinf(fault.NextBoundaryAfter(0.0)));
}

TEST(FaultScheduleTest, DeterministicAcrossInstances) {
  net::FaultSchedule::Options options;
  options.outage_rate_per_hour = 120.0;
  options.outage_mean_seconds = 5.0;
  options.burst_rate_per_hour = 60.0;
  options.dip_rate_per_hour = 30.0;
  options.seed = 7;
  net::FaultSchedule a(options);
  net::FaultSchedule b(options);
  for (int i = 0; i < 500; ++i) {
    const double t = 1.7 * i;
    EXPECT_EQ(a.InOutage(t), b.InOutage(t)) << "t=" << t;
    EXPECT_DOUBLE_EQ(a.LossFactor(t), b.LossFactor(t));
    EXPECT_DOUBLE_EQ(a.BandwidthFactor(t), b.BandwidthFactor(t));
    EXPECT_DOUBLE_EQ(a.NextBoundaryAfter(t), b.NextBoundaryAfter(t));
  }
}

TEST(FaultScheduleTest, PureWithRespectToQueryOrder) {
  net::FaultSchedule::Options options;
  options.outage_rate_per_hour = 120.0;
  options.outage_mean_seconds = 5.0;
  options.seed = 7;
  net::FaultSchedule forward(options);
  net::FaultSchedule mixed(options);
  // Querying far ahead first must not change earlier answers.
  mixed.InOutage(10000.0);
  for (int i = 0; i < 200; ++i) {
    const double t = 3.1 * i;
    EXPECT_EQ(forward.InOutage(t), mixed.InOutage(t)) << "t=" << t;
  }
}

TEST(FaultScheduleTest, OutageWindowsHaveDurationAndEnd) {
  net::FaultSchedule::Options options;
  options.outage_rate_per_hour = 360.0;  // mean gap 10 s
  options.outage_mean_seconds = 5.0;
  options.seed = 3;
  net::FaultSchedule fault(options);
  int outage_samples = 0;
  for (double t = 0.0; t < 600.0; t += 0.5) {
    if (!fault.InOutage(t)) continue;
    ++outage_samples;
    const double remaining = fault.OutageRemaining(t);
    EXPECT_GT(remaining, 0.0);
    // Just past the window's end connectivity is back (the next window
    // starts an exponential gap later).
    EXPECT_FALSE(fault.InOutage(t + remaining + 1e-9));
  }
  EXPECT_GT(outage_samples, 0);
}

TEST(FaultScheduleTest, StateConstantBetweenBoundaries) {
  net::FaultSchedule::Options options;
  options.outage_rate_per_hour = 240.0;
  options.burst_rate_per_hour = 120.0;
  options.dip_rate_per_hour = 120.0;
  options.seed = 11;
  net::FaultSchedule fault(options);
  double t = 0.0;
  for (int i = 0; i < 200 && t < 3600.0; ++i) {
    const double next = fault.NextBoundaryAfter(t);
    ASSERT_GT(next, t);
    const double mid = t + 0.5 * (next - t);
    EXPECT_EQ(fault.InOutage(t), fault.InOutage(mid));
    EXPECT_DOUBLE_EQ(fault.LossFactor(t), fault.LossFactor(mid));
    EXPECT_DOUBLE_EQ(fault.BandwidthFactor(t), fault.BandwidthFactor(mid));
    t = next + 1e-9;
  }
}

TEST(FaultScheduleTest, BurstAndDipFactorsTakeConfiguredValues) {
  net::FaultSchedule::Options options;
  options.burst_rate_per_hour = 600.0;
  options.burst_mean_seconds = 4.0;
  options.burst_loss_factor = 8.0;
  options.dip_rate_per_hour = 600.0;
  options.dip_mean_seconds = 4.0;
  options.dip_bandwidth_factor = 0.35;
  options.seed = 13;
  net::FaultSchedule fault(options);
  bool saw_burst = false, saw_quiet_burst = false;
  bool saw_dip = false, saw_quiet_dip = false;
  for (double t = 0.0; t < 600.0; t += 0.25) {
    const double loss = fault.LossFactor(t);
    EXPECT_TRUE(loss == 1.0 || loss == 8.0);
    (loss == 8.0 ? saw_burst : saw_quiet_burst) = true;
    const double bw = fault.BandwidthFactor(t);
    EXPECT_TRUE(bw == 1.0 || bw == 0.35);
    (bw == 0.35 ? saw_dip : saw_quiet_dip) = true;
  }
  EXPECT_TRUE(saw_burst);
  EXPECT_TRUE(saw_quiet_burst);
  EXPECT_TRUE(saw_dip);
  EXPECT_TRUE(saw_quiet_dip);
}

TEST(FaultScheduleTest, InjectOutageEnablesQuietScheduleAndCoversWindow) {
  net::FaultSchedule fault;
  EXPECT_FALSE(fault.enabled());
  fault.InjectOutage(10.0, 5.0);
  // The first injection flips a previously all-quiet schedule on.
  EXPECT_TRUE(fault.enabled());
  EXPECT_EQ(fault.injected_outages(), 1);
  EXPECT_FALSE(fault.InOutage(9.9));
  EXPECT_TRUE(fault.InOutage(10.0));
  EXPECT_TRUE(fault.InOutage(14.9));
  EXPECT_FALSE(fault.InOutage(15.0));  // half-open window
  EXPECT_DOUBLE_EQ(fault.OutageRemaining(12.0), 3.0);
  EXPECT_DOUBLE_EQ(fault.OutageRemaining(20.0), 0.0);
}

TEST(FaultScheduleTest, InjectedWindowsFeedNextBoundaryAfter) {
  net::FaultSchedule fault;
  fault.InjectOutage(30.0, 10.0);
  fault.InjectOutage(100.0, 2.0);
  // Boundaries are the window starts and ends, in order.
  EXPECT_DOUBLE_EQ(fault.NextBoundaryAfter(0.0), 30.0);
  EXPECT_DOUBLE_EQ(fault.NextBoundaryAfter(30.0), 40.0);
  EXPECT_DOUBLE_EQ(fault.NextBoundaryAfter(40.0), 100.0);
  EXPECT_DOUBLE_EQ(fault.NextBoundaryAfter(100.0), 102.0);
  EXPECT_TRUE(std::isinf(fault.NextBoundaryAfter(102.0)));
}

TEST(FaultScheduleTest, InjectedWindowsComposeWithSampledOutages) {
  net::FaultSchedule::Options options;
  options.outage_rate_per_hour = 360.0;
  options.outage_mean_seconds = 2.0;
  options.seed = 9;
  net::FaultSchedule sampled(options);
  net::FaultSchedule both(options);
  // Find a sampled-quiet instant, then inject a blackout over it: the
  // sampled process must be unperturbed and the injected window must win.
  double quiet = -1.0;
  for (double t = 0.0; t < 600.0; t += 0.5) {
    if (!sampled.InOutage(t)) {
      quiet = t;
      break;
    }
  }
  ASSERT_GE(quiet, 0.0);
  both.InjectOutage(quiet, 0.25);
  EXPECT_TRUE(both.InOutage(quiet));
  for (double t = 0.0; t < 600.0; t += 0.5) {
    if (t >= quiet && t < quiet + 0.25) continue;
    EXPECT_EQ(both.InOutage(t), sampled.InOutage(t)) << "t=" << t;
  }
}

// --- SimulatedLink under faults -----------------------------------------

// Advances `link` until the schedule reports the wanted state (bounded).
template <typename Pred>
bool WaitUntil(net::SimulatedLink* link, Pred pred) {
  for (int i = 0; i < 100000; ++i) {
    if (pred()) return true;
    link->Wait(0.25);
  }
  return false;
}

TEST(LinkFaultTest, AttemptDuringOutageFailsFast) {
  net::FaultSchedule::Options fo;
  fo.outage_rate_per_hour = 1200.0;  // mean gap 3 s
  fo.outage_mean_seconds = 10.0;
  fo.seed = 5;
  net::FaultSchedule fault(fo);
  net::SimulatedLink link;
  link.AttachFaultSchedule(&fault);
  ASSERT_TRUE(
      WaitUntil(&link, [&] { return fault.InOutage(link.now()); }));

  const auto outcome = link.Attempt(100, 32000, 0.0);
  EXPECT_FALSE(outcome.delivered);
  // A failed connection costs one latency, no transfer.
  EXPECT_DOUBLE_EQ(outcome.seconds, link.options().latency_seconds);
  EXPECT_DOUBLE_EQ(outcome.fraction_received, 0.0);
  EXPECT_EQ(link.total_retries(), 1);
  EXPECT_EQ(link.total_requests(), 0);
}

TEST(LinkFaultTest, BandwidthDipStretchesTransferNotLatency) {
  net::FaultSchedule::Options fo;
  fo.dip_rate_per_hour = 1200.0;
  fo.dip_mean_seconds = 10.0;
  fo.dip_bandwidth_factor = 0.25;
  fo.seed = 5;
  net::FaultSchedule fault(fo);
  net::SimulatedLink link;  // loss 0: attempts always deliver
  link.AttachFaultSchedule(&fault);
  ASSERT_TRUE(WaitUntil(
      &link, [&] { return fault.BandwidthFactor(link.now()) < 1.0; }));

  // 32000 B at rest: 0.2 s latency + 1 s transfer; the dip quarters the
  // bandwidth, so the transfer takes 4 s.
  const auto outcome = link.Attempt(0, 32000, 0.0);
  EXPECT_TRUE(outcome.delivered);
  EXPECT_NEAR(outcome.seconds, 0.2 + 4.0, 1e-9);
}

TEST(LinkFaultTest, ExchangeRetryCapCountsTimeoutsAndTerminates) {
  net::SimulatedLink::Options options;
  options.loss_probability = 0.45;
  options.max_retries_per_exchange = 3;
  options.loss_seed = 17;
  net::SimulatedLink link(options);
  for (int i = 0; i < 200; ++i) {
    const double seconds = link.Exchange(100, 4000, 0.0);
    EXPECT_TRUE(std::isfinite(seconds));
    EXPECT_GT(seconds, 0.0);
  }
  // Every exchange is eventually forced through.
  EXPECT_EQ(link.total_requests(), 200);
  // p(3 straight losses) = 0.45^3 ≈ 9%: the cap fires sometimes.
  EXPECT_GT(link.total_timeouts(), 0);
  EXPECT_LT(link.total_timeouts(), 100);
  EXPECT_GT(link.total_retries(), 0);
  link.ResetStats();
  EXPECT_EQ(link.total_timeouts(), 0);
  EXPECT_EQ(link.total_retries(), 0);
}

TEST(LinkFaultTest, DisabledScheduleDoesNotPerturbLossProcess) {
  net::SimulatedLink::Options options;
  options.loss_probability = 0.3;
  options.loss_seed = 23;
  net::SimulatedLink plain(options);
  net::SimulatedLink attached(options);
  net::FaultSchedule quiet;  // enabled() == false
  attached.AttachFaultSchedule(&quiet);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(plain.Exchange(100, 5000, 0.4),
                     attached.Exchange(100, 5000, 0.4));
  }
  EXPECT_EQ(plain.total_retries(), attached.total_retries());
  EXPECT_DOUBLE_EQ(plain.total_seconds(), attached.total_seconds());
}

// --- ReliableChannel ----------------------------------------------------

TEST(ReliableChannelTest, CleanLinkParityWithPlainExchange) {
  net::SimulatedLink via_channel;
  net::SimulatedLink plain;
  net::ReliableChannel channel(&via_channel,
                               net::ReliableChannel::Options());
  for (int i = 0; i < 20; ++i) {
    const auto result = channel.Exchange(200, 10000, 0.3);
    const double plain_seconds = plain.Exchange(200, 10000, 0.3);
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.attempts, 1);
    EXPECT_EQ(result.retries, 0);
    // Zero-fault parity: identical cost, no backoff, no resume.
    EXPECT_DOUBLE_EQ(result.seconds, plain_seconds);
    EXPECT_EQ(result.bytes_saved_by_resume, 0);
  }
  EXPECT_DOUBLE_EQ(via_channel.total_seconds(), plain.total_seconds());
  EXPECT_EQ(via_channel.total_bytes_down(), plain.total_bytes_down());
  EXPECT_EQ(channel.total_retries(), 0);
  EXPECT_EQ(channel.total_failures(), 0);
  EXPECT_DOUBLE_EQ(channel.total_backoff_seconds(), 0.0);
}

TEST(ReliableChannelTest, FailsBoundedlyDuringLongOutage) {
  net::FaultSchedule::Options fo;
  fo.outage_rate_per_hour = 1200.0;
  fo.outage_mean_seconds = 1e6;  // effectively permanent once it starts
  fo.seed = 5;
  net::FaultSchedule fault(fo);
  net::SimulatedLink link;
  link.AttachFaultSchedule(&fault);
  ASSERT_TRUE(
      WaitUntil(&link, [&] { return fault.InOutage(link.now()); }));

  net::ReliableChannel::Options co;
  co.max_attempts = 4;
  co.deadline_seconds = 1e9;  // budget, not deadline, is the binding limit
  net::ReliableChannel channel(&link, co);
  const double before = link.now();
  const auto result = channel.Exchange(100, 32000, 0.0);
  EXPECT_TRUE(result.failed());
  EXPECT_EQ(result.status.code(), common::StatusCode::kResourceExhausted);
  EXPECT_EQ(result.attempts, 4);
  EXPECT_EQ(result.retries, 4);
  // Bounded: 4 fast failures plus three backoffs, nowhere near the
  // outage's length.
  EXPECT_LT(link.now() - before, 30.0);
  EXPECT_EQ(channel.total_failures(), 1);
}

TEST(ReliableChannelTest, DeadlineFailureReportsInternal) {
  net::FaultSchedule::Options fo;
  fo.outage_rate_per_hour = 1200.0;
  fo.outage_mean_seconds = 1e6;
  fo.seed = 5;
  net::FaultSchedule fault(fo);
  net::SimulatedLink link;
  link.AttachFaultSchedule(&fault);
  ASSERT_TRUE(
      WaitUntil(&link, [&] { return fault.InOutage(link.now()); }));

  net::ReliableChannel::Options co;
  co.max_attempts = 1000;
  co.deadline_seconds = 2.0;
  net::ReliableChannel channel(&link, co);
  const auto result = channel.Exchange(100, 32000, 0.0);
  EXPECT_TRUE(result.failed());
  EXPECT_EQ(result.status.code(), common::StatusCode::kInternal);
  EXPECT_LT(result.attempts, 1000);
}

TEST(ReliableChannelTest, PartialTransferResumeSavesBytes) {
  net::SimulatedLink::Options options;
  options.loss_probability = 0.4;
  options.loss_seed = 29;
  net::SimulatedLink link(options);
  net::ReliableChannel channel(&link, net::ReliableChannel::Options());
  int64_t delivered = 0;
  for (int i = 0; i < 100; ++i) {
    const auto result = channel.Exchange(200, 50000, 0.0);
    if (result.status.ok()) ++delivered;
  }
  EXPECT_GT(delivered, 80);  // p(6 straight losses) is tiny
  EXPECT_GT(channel.total_retries(), 0);
  // Resumed fractions add up: retries did not re-send everything.
  EXPECT_GT(channel.total_bytes_saved(), 0);
  EXPECT_GT(channel.total_backoff_seconds(), 0.0);
}

// --- SharedMediumLink loss parity ---------------------------------------

TEST(SharedLinkFaultTest, LossInflatesCarriedBytesBoundedly) {
  net::SharedMediumLink::Options options;
  options.loss_probability = 0.4;
  options.loss_seed = 31;
  options.max_retries_per_transfer = 8;
  net::SharedMediumLink lossy(options);
  net::SharedMediumLink clean;
  for (int i = 0; i < 50; ++i) {
    lossy.Submit(0, 20000, 0.3);
    clean.Submit(0, 20000, 0.3);
    lossy.Advance(1.0);
    clean.Advance(1.0);
  }
  const auto lossy_done = lossy.DrainAll();
  const auto clean_done = clean.DrainAll();
  EXPECT_GT(lossy.total_retries(), 0);
  // Retransmission inflates the cell's carried time, never hangs it.
  EXPECT_GT(lossy.now(), clean.now());
  EXPECT_TRUE(std::isfinite(lossy.now()));
  (void)lossy_done;
  (void)clean_done;
}

TEST(SharedLinkFaultTest, OutageStallsCellThenDrains) {
  net::FaultSchedule::Options fo;
  fo.outage_rate_per_hour = 720.0;  // mean gap 5 s
  fo.outage_mean_seconds = 3.0;
  fo.seed = 9;
  net::FaultSchedule fault(fo);
  net::SharedMediumLink link;
  link.AttachFaultSchedule(&fault);
  int completed = 0;
  for (int i = 0; i < 60; ++i) {
    link.Submit(i % 3, 8000, 0.2);
    completed += static_cast<int>(link.Advance(2.0).size());
  }
  completed += static_cast<int>(link.DrainAll().size());
  EXPECT_EQ(completed, 60);
  EXPECT_GT(link.total_outage_seconds(), 0.0);
}

// --- End-to-end clients over a degraded link ----------------------------

class FaultE2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SceneOptions scene;
    scene.space = MakeBox2(0, 0, 1000, 1000);
    scene.object_count = 10;
    scene.levels = 2;
    scene.seed = 21;
    auto db = workload::GenerateScene(scene);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<server::ObjectDatabase>(std::move(*db));
    server_ = std::make_unique<server::Server>(
        db_.get(), server::Server::IndexKind::kSupportRegion);
    space_ = scene.space;
  }

  // An aggressive schedule: outages arrive every ~4 s (mean) and last
  // ~3 s, so a multi-frame run sees several connect/disconnect cycles.
  net::FaultSchedule::Options HarshOutages() const {
    net::FaultSchedule::Options fo;
    fo.outage_rate_per_hour = 900.0;
    fo.outage_mean_seconds = 3.0;
    fo.seed = 4;
    return fo;
  }

  std::unique_ptr<server::ObjectDatabase> db_;
  std::unique_ptr<server::Server> server_;
  geometry::Box2 space_;
};

TEST_F(FaultE2ETest, StreamingSessionNeverDesyncs) {
  net::SimulatedLink::Options lo;
  lo.loss_probability = 0.2;
  lo.loss_seed = 3;
  net::SimulatedLink link(lo);
  net::FaultSchedule fault(HarshOutages());
  link.AttachFaultSchedule(&fault);

  client::StreamingClient::Options options;
  options.query_fraction = 0.2;
  options.channel.max_attempts = 2;
  options.channel.deadline_seconds = 8.0;
  client::StreamingClient cl(options, space_, server_.get(), &link);

  std::unordered_set<index::RecordId> installed;
  int failed_frames = 0;
  int recovered_frames = 0;
  bool last_failed = false;
  for (int t = 0; t < 60; ++t) {
    const auto report = cl.Step({80.0 + 14.0 * t, 200.0 + 9.0 * t}, 0.5);
    if (report.status.ok()) {
      if (last_failed) ++recovered_frames;
      last_failed = false;
      installed.insert(report.records.begin(), report.records.end());
    } else {
      ++failed_frames;
      last_failed = true;
      // A failed frame installs nothing.
      EXPECT_TRUE(report.records.empty());
      EXPECT_EQ(report.new_records, 0);
    }
    // THE desync invariant, checked every frame (before and after each
    // reconnect): the server never commits a record the client does not
    // hold, and everything the client holds is either committed or
    // awaiting its ack.
    const server::ClientSession& session = cl.session();
    for (index::RecordId id : session.delivered) {
      EXPECT_TRUE(installed.contains(id))
          << "server committed record " << id
          << " the client never installed (frame " << t << ")";
    }
    std::unordered_set<index::RecordId> server_view = session.delivered;
    server_view.insert(session.pending.begin(), session.pending.end());
    EXPECT_EQ(server_view, installed) << "frame " << t;
  }
  // The schedule actually exercised both failure and recovery.
  ASSERT_GT(failed_frames, 0);
  ASSERT_GT(recovered_frames, 0);
  EXPECT_GT(cl.session().rolled_back_batches, 0);

  // Quiescing commits the trailing batch: committed == installed exactly.
  cl.FlushAck();
  EXPECT_EQ(cl.session().delivered, installed);
  EXPECT_TRUE(cl.session().pending.empty());
}

TEST_F(FaultE2ETest, StreamingReconnectRecoversLostRegion) {
  // With the same tour, a client on a faulty link must end up holding
  // every record a clean-link client holds for the frames after the last
  // recovery — the incremental plan re-covers what was lost.
  const auto path = [](int t) {
    return geometry::Vec2{100.0 + 10.0 * t, 300.0 + 6.0 * t};
  };

  net::SimulatedLink clean_link;
  client::StreamingClient::Options options;
  options.query_fraction = 0.2;
  client::StreamingClient clean(options, space_, server_.get(),
                                &clean_link);
  std::unordered_set<index::RecordId> clean_records;
  for (int t = 0; t < 50; ++t) {
    const auto r = clean.Step(path(t), 0.4);
    clean_records.insert(r.records.begin(), r.records.end());
  }

  net::SimulatedLink::Options lo;
  lo.loss_probability = 0.2;
  lo.loss_seed = 3;
  net::SimulatedLink faulty_link(lo);
  net::FaultSchedule fault(HarshOutages());
  faulty_link.AttachFaultSchedule(&fault);
  client::StreamingClient::Options faulty_options = options;
  faulty_options.channel.max_attempts = 2;
  client::StreamingClient faulty(faulty_options, space_, server_.get(),
                                 &faulty_link);
  std::unordered_set<index::RecordId> faulty_records;
  std::unordered_set<index::RecordId> needed_after_recovery;
  int failures = 0;
  for (int t = 0; t < 50; ++t) {
    const auto r = faulty.Step(path(t), 0.4);
    if (r.status.ok()) {
      faulty_records.insert(r.records.begin(), r.records.end());
      if (failures > 0 && needed_after_recovery.empty()) {
        // First frame back after an outage: the plan must have
        // re-covered the lost region, i.e. delivered at least as much
        // as a single clean incremental frame would.
        needed_after_recovery.insert(r.records.begin(), r.records.end());
      }
    } else {
      ++failures;
    }
  }
  ASSERT_GT(failures, 0);
  EXPECT_FALSE(needed_after_recovery.empty());
  // The faulty client never holds anything the clean client would not
  // (reconnect re-covers, it does not over-fetch outside the view).
  for (index::RecordId id : faulty_records) {
    EXPECT_TRUE(clean_records.contains(id)) << "unexpected record " << id;
  }
}

TEST_F(FaultE2ETest, BufferedClientDegradesAndRecovers) {
  net::SimulatedLink::Options lo;
  lo.loss_probability = 0.1;
  lo.loss_seed = 3;
  net::SimulatedLink link(lo);
  net::FaultSchedule fault(HarshOutages());
  link.AttachFaultSchedule(&fault);

  client::BufferedClient::Options options;
  options.query_fraction = 0.2;
  options.channel.max_attempts = 2;
  options.channel.deadline_seconds = 8.0;
  client::BufferedClient cl(options, space_, server_.get(), &link);

  int64_t demand_after_recovery = 0;
  bool in_outage = false;
  for (int t = 0; t < 80; ++t) {
    const auto report = cl.Step({60.0 + 11.0 * t, 150.0 + 8.0 * t}, 0.5);
    if (report.outage) {
      in_outage = true;
      // Degraded, not stuck: the frame completes and reports what is
      // missing.
      EXPECT_GT(report.stale_blocks, 0);
    } else if (in_outage) {
      in_outage = false;
      demand_after_recovery += report.demand_bytes;
    }
  }
  EXPECT_GT(cl.outage_frames(), 0);
  EXPECT_LT(cl.outage_frames(), 80);  // connectivity came back
  EXPECT_GE(cl.stale_frames(), cl.outage_frames());
  EXPECT_GE(cl.max_stale_run_frames(), 1);
  EXPECT_GT(cl.total_timeouts(), 0);
  // After a recovery the client re-fetched the missing blocks.
  EXPECT_GT(demand_after_recovery, 0);
}

// --- Zero-fault regression at system level ------------------------------

TEST(FaultSystemTest, ZeroFaultRunsAreCleanAndReproducible) {
  core::System::Config config;
  config.scene.space = MakeBox2(0, 0, 1000, 1000);
  config.scene.object_count = 10;
  config.scene.levels = 2;
  config.scene.seed = 21;
  auto system = core::System::Create(config);
  ASSERT_TRUE(system.ok());

  workload::TourOptions to;
  to.space = (*system)->space();
  to.frames = 40;
  to.seed = 6;
  const auto tour = workload::GenerateTour(to);

  const auto a = (*system)->RunBuffered(
      tour, client::BufferedClient::Options());
  const auto b = (*system)->RunBuffered(
      tour, client::BufferedClient::Options());
  // No fault machinery engages on a clean link...
  EXPECT_EQ(a.retries, 0);
  EXPECT_EQ(a.timeouts, 0);
  EXPECT_EQ(a.outage_frames, 0);
  EXPECT_EQ(a.stale_frames, 0);
  EXPECT_EQ(a.max_stale_run_frames, 0);
  // ...and runs stay bit-for-bit reproducible.
  EXPECT_EQ(a.demand_bytes, b.demand_bytes);
  EXPECT_EQ(a.prefetch_bytes, b.prefetch_bytes);
  EXPECT_DOUBLE_EQ(a.total_response_seconds, b.total_response_seconds);
  EXPECT_DOUBLE_EQ(a.cache_hit_rate, b.cache_hit_rate);

  const auto s = (*system)->RunStreaming(
      tour, client::StreamingClient::Options());
  EXPECT_EQ(s.retries, 0);
  EXPECT_EQ(s.timeouts, 0);
  EXPECT_EQ(s.outage_frames, 0);
  EXPECT_GT(s.records_delivered, 0);
}

}  // namespace
}  // namespace mars
