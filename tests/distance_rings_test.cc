#include <cmath>

#include <gtest/gtest.h>

#include "client/distance_rings.h"
#include "common/rng.h"
#include "geometry/box.h"

namespace mars::client {
namespace {

using geometry::Box2;
using geometry::MakeBox2;
using geometry::Vec2;

TEST(DistanceRingsTest, SingleRingIsPlainQuery) {
  DistanceRingOptions options;
  options.rings = 1;
  const Box2 window = MakeBox2(0, 0, 10, 10);
  const auto plan = PlanDistanceRings(window, {5, 5}, 0.3, options);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].region, window);
  EXPECT_DOUBLE_EQ(plan[0].w_min, 0.3);
}

TEST(DistanceRingsTest, RingsTileTheWindow) {
  DistanceRingOptions options;
  options.rings = 3;
  const Box2 window = MakeBox2(0, 0, 12, 12);
  const auto plan = PlanDistanceRings(window, {6, 6}, 0.2, options);
  // Disjoint interiors covering the full window area.
  double area = 0.0;
  for (size_t i = 0; i < plan.size(); ++i) {
    area += plan[i].region.Volume();
    for (size_t j = i + 1; j < plan.size(); ++j) {
      EXPECT_LE(plan[i].region.Intersection(plan[j].region).Volume(), 1e-9);
    }
    EXPECT_TRUE(window.Contains(plan[i].region));
  }
  EXPECT_NEAR(area, window.Volume(), 1e-9);
}

TEST(DistanceRingsTest, ResolutionCoarsensOutward) {
  DistanceRingOptions options;
  options.rings = 4;
  const Box2 window = MakeBox2(0, 0, 16, 16);
  const Vec2 center{8, 8};
  const auto plan = PlanDistanceRings(window, center, 0.1, options);
  // The sub-query containing the client has the finest band; the corner
  // has the coarsest.
  double center_w = -1, corner_w = -1;
  for (const auto& sq : plan) {
    if (sq.region.ContainsPoint({8, 8})) center_w = sq.w_min;
    if (sq.region.ContainsPoint({0.01, 0.01})) corner_w = sq.w_min;
  }
  ASSERT_GE(center_w, 0.0);
  ASSERT_GE(corner_w, 0.0);
  EXPECT_DOUBLE_EQ(center_w, 0.1);
  EXPECT_GT(corner_w, center_w);
  // Every band is at least the base and at most 1.
  for (const auto& sq : plan) {
    EXPECT_GE(sq.w_min, 0.1);
    EXPECT_LE(sq.w_min, 1.0);
    EXPECT_DOUBLE_EQ(sq.w_max, 1.0);
  }
}

TEST(DistanceRingsTest, OffCenterClientClipsToWindow) {
  // A client at the window edge (e.g. when the window was clipped at the
  // space boundary) still gets a full tiling.
  DistanceRingOptions options;
  options.rings = 3;
  const Box2 window = MakeBox2(0, 0, 10, 10);
  const auto plan = PlanDistanceRings(window, {1, 1}, 0.4, options);
  double area = 0.0;
  for (const auto& sq : plan) {
    EXPECT_TRUE(window.Contains(sq.region));
    area += sq.region.Volume();
  }
  EXPECT_NEAR(area, window.Volume(), 1e-9);
}

TEST(DistanceRingsTest, FullSpeedDegeneratesToBaseMeshEverywhere) {
  DistanceRingOptions options;
  options.rings = 3;
  const auto plan =
      PlanDistanceRings(MakeBox2(0, 0, 10, 10), {5, 5}, 1.0, options);
  for (const auto& sq : plan) {
    EXPECT_DOUBLE_EQ(sq.w_min, 1.0);  // nothing finer than base anywhere
  }
}

TEST(DistanceRingsTest, RandomizedTilingProperty) {
  common::Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    DistanceRingOptions options;
    options.rings = static_cast<int32_t>(rng.UniformInt(1, 6));
    options.falloff = rng.Uniform(0.2, 1.0);
    const double x0 = rng.Uniform(0, 100), y0 = rng.Uniform(0, 100);
    const Box2 window =
        MakeBox2(x0, y0, x0 + rng.Uniform(1, 50), y0 + rng.Uniform(1, 50));
    const Vec2 pos{rng.Uniform(window.lo(0), window.hi(0)),
                   rng.Uniform(window.lo(1), window.hi(1))};
    const double base = rng.UniformDouble();
    const auto plan = PlanDistanceRings(window, pos, base, options);
    double area = 0.0;
    for (size_t i = 0; i < plan.size(); ++i) {
      area += plan[i].region.Volume();
      for (size_t j = i + 1; j < plan.size(); ++j) {
        EXPECT_LE(plan[i].region.Intersection(plan[j].region).Volume(),
                  1e-9);
      }
    }
    EXPECT_NEAR(area, window.Volume(), 1e-6);
  }
}

}  // namespace
}  // namespace mars::client
