#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "workload/scene.h"
#include "workload/tour.h"

namespace mars::workload {
namespace {

// --- Scene -------------------------------------------------------------------

TEST(SceneTest, GeneratesRequestedObjectCount) {
  SceneOptions options;
  options.object_count = 12;
  options.levels = 2;
  options.space = geometry::MakeBox2(0, 0, 2000, 2000);
  auto db = GenerateScene(options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->object_count(), 12);
  EXPECT_TRUE(db->finalized());
}

TEST(SceneTest, ObjectsStayInsideSpace) {
  SceneOptions options;
  options.object_count = 30;
  options.levels = 1;
  options.space = geometry::MakeBox2(0, 0, 2000, 2000);
  for (auto placement : {Placement::kUniform, Placement::kZipf}) {
    options.placement = placement;
    auto db = GenerateScene(options);
    ASSERT_TRUE(db.ok());
    for (const auto& bounds : db->object_bounds()) {
      // Displacement noise can push support regions slightly past the
      // footprint; allow a small margin.
      EXPECT_GE(bounds.lo(0), -options.displacement_amplitude * 2);
      EXPECT_LE(bounds.hi(0),
                2000 + options.max_footprint +
                    options.displacement_amplitude * 2);
    }
  }
}

TEST(SceneTest, DeterministicForSeed) {
  SceneOptions options;
  options.object_count = 5;
  options.levels = 2;
  options.seed = 99;
  auto a = GenerateScene(options);
  auto b = GenerateScene(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->records().size(), b->records().size());
  for (size_t i = 0; i < a->records().size(); ++i) {
    EXPECT_EQ(a->records()[i].w, b->records()[i].w);
    EXPECT_EQ(a->records()[i].position, b->records()[i].position);
  }
  EXPECT_EQ(a->total_bytes(), b->total_bytes());
}

TEST(SceneTest, DifferentSeedsDiffer) {
  SceneOptions options;
  options.object_count = 5;
  options.levels = 2;
  options.seed = 1;
  auto a = GenerateScene(options);
  options.seed = 2;
  auto b = GenerateScene(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->records()[0].position, b->records()[0].position);
}

TEST(SceneTest, DatasetSizingMatchesPaperScale) {
  // 100 objects should weigh roughly 20 MB (Sec. VII-A); we accept a broad
  // band since the wire-format constants are a model.
  SceneOptions options = SceneForDatasetSize(20);
  EXPECT_EQ(options.object_count, 100);
  options.object_count = 10;  // keep the test fast; scale the check
  auto db = GenerateScene(options);
  ASSERT_TRUE(db.ok());
  const double mb_per_object =
      static_cast<double>(db->total_bytes()) / db->object_count() /
      (1024.0 * 1024.0);
  EXPECT_GT(mb_per_object, 0.1);
  EXPECT_LT(mb_per_object, 0.4);  // ~0.2 MB per object
}

TEST(SceneTest, ZipfPlacementClusters) {
  // Zipf scenes concentrate objects: the mean nearest-neighbour distance
  // should be clearly below the uniform scene's.
  auto mean_nn = [](const server::ObjectDatabase& db) {
    double total = 0;
    for (int32_t i = 0; i < db.object_count(); ++i) {
      const auto ci = db.object_bounds()[i].Center();
      double best = 1e18;
      for (int32_t j = 0; j < db.object_count(); ++j) {
        if (i == j) continue;
        const auto cj = db.object_bounds()[j].Center();
        best = std::min(best, std::hypot(ci[0] - cj[0], ci[1] - cj[1]));
      }
      total += best;
    }
    return total / db.object_count();
  };
  SceneOptions options;
  options.object_count = 60;
  options.levels = 1;
  options.zipf_skew = 1.2;
  options.placement = Placement::kUniform;
  auto uniform = GenerateScene(options);
  options.placement = Placement::kZipf;
  auto zipf = GenerateScene(options);
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(zipf.ok());
  EXPECT_LT(mean_nn(*zipf), mean_nn(*uniform));
}

TEST(SceneTest, InvalidOptionsRejected) {
  SceneOptions options;
  options.object_count = 0;
  EXPECT_FALSE(GenerateScene(options).ok());
  options = SceneOptions();
  options.levels = 0;
  EXPECT_FALSE(GenerateScene(options).ok());
}

TEST(SceneTest, LevelsControlCoefficientCount) {
  // Coefficients per object grow 4x per level (21 * 4^j for buildings).
  for (int levels : {1, 2, 3}) {
    SceneOptions options;
    options.object_count = 2;
    options.levels = levels;
    options.seed = 77;
    auto db = GenerateScene(options);
    ASSERT_TRUE(db.ok());
    int64_t expected = 0;
    for (int j = 0; j < levels; ++j) expected += 21LL << (2 * j);
    EXPECT_EQ(db->object(0).coefficient_count(), expected);
  }
}

TEST(SceneTest, RecordsScaleLinearlyWithObjects) {
  SceneOptions options;
  options.levels = 2;
  options.object_count = 4;
  auto small = GenerateScene(options);
  options.object_count = 8;
  auto large = GenerateScene(options);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(large->records().size(), 2 * small->records().size());
}

TEST(SceneTest, SingleZipfClusterStillWorks) {
  SceneOptions options;
  options.object_count = 10;
  options.levels = 1;
  options.placement = Placement::kZipf;
  options.zipf_clusters = 1;
  auto db = GenerateScene(options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->object_count(), 10);
}

// --- Tours ------------------------------------------------------------------

TEST(TourTest, FrameCountRespected) {
  TourOptions options;
  options.frames = 123;
  const auto tour = GenerateTour(options);
  EXPECT_EQ(tour.size(), 123u);
}

TEST(TourTest, PositionsInsideSpace) {
  for (auto kind : {TourKind::kTram, TourKind::kPedestrian}) {
    TourOptions options;
    options.kind = kind;
    options.frames = 2000;
    options.target_speed = 0.9;
    const auto tour = GenerateTour(options);
    for (const TourPoint& p : tour) {
      EXPECT_GE(p.position.x, options.space.lo(0));
      EXPECT_LE(p.position.x, options.space.hi(0));
      EXPECT_GE(p.position.y, options.space.lo(1));
      EXPECT_LE(p.position.y, options.space.hi(1));
      EXPECT_GE(p.speed, 0.001);
      EXPECT_LE(p.speed, 1.0);
    }
  }
}

TEST(TourTest, DeterministicForSeed) {
  TourOptions options;
  options.frames = 200;
  options.seed = 5;
  const auto a = GenerateTour(options);
  const auto b = GenerateTour(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].position, b[i].position);
    EXPECT_DOUBLE_EQ(a[i].speed, b[i].speed);
  }
}

TEST(TourTest, DistanceModeCoversRequestedDistance) {
  TourOptions options;
  options.distance = 2000.0;
  options.target_speed = 0.5;
  const auto tour = GenerateTour(options);
  // Step length ≈ 0.5 · 15 m: total within one step of the target.
  EXPECT_GE(TourDistance(tour), 2000.0 - 15.0);
}

TEST(TourTest, SimilarDistanceAcrossSpeeds) {
  // The Fig. 8 setup: same distance at different speeds means fewer
  // frames at higher speeds.
  TourOptions options;
  options.distance = 3000.0;
  options.kind = TourKind::kTram;
  options.target_speed = 0.1;
  const auto slow = GenerateTour(options);
  options.target_speed = 1.0;
  const auto fast = GenerateTour(options);
  EXPECT_NEAR(TourDistance(slow), TourDistance(fast),
              0.1 * TourDistance(slow));
  EXPECT_GT(slow.size(), fast.size() * 5);
}

TEST(TourTest, SpeedVariesAroundTarget) {
  TourOptions options;
  options.kind = TourKind::kPedestrian;
  options.target_speed = 0.5;
  options.frames = 2000;
  const auto tour = GenerateTour(options);
  double sum = 0;
  for (const auto& p : tour) sum += p.speed;
  EXPECT_NEAR(sum / tour.size(), 0.5, 0.1);
}

TEST(TourTest, TramStraighterThanPedestrian) {
  // Quantifies the predictability gap the paper relies on: mean absolute
  // heading change per frame is far lower for trams.
  auto mean_turn = [](TourKind kind) {
    TourOptions options;
    options.kind = kind;
    options.frames = 3000;
    options.target_speed = 0.5;
    options.seed = 31;
    const auto tour = GenerateTour(options);
    double total = 0;
    int count = 0;
    for (size_t i = 2; i < tour.size(); ++i) {
      const auto v1 = tour[i - 1].position - tour[i - 2].position;
      const auto v2 = tour[i].position - tour[i - 1].position;
      if (v1.Norm() < 1e-9 || v2.Norm() < 1e-9) continue;
      const double dot = std::clamp(
          v1.Dot(v2) / (v1.Norm() * v2.Norm()), -1.0, 1.0);
      total += std::acos(dot);
      ++count;
    }
    return total / count;
  };
  EXPECT_LT(mean_turn(TourKind::kTram), 0.5 * mean_turn(TourKind::kPedestrian));
}

TEST(TourTest, TimeStampsAdvanceByFrameInterval) {
  TourOptions options;
  options.frames = 50;
  options.frame_interval = 0.5;
  const auto tour = GenerateTour(options);
  for (size_t i = 1; i < tour.size(); ++i) {
    EXPECT_NEAR(tour[i].time - tour[i - 1].time, 0.5, 1e-12);
  }
}

TEST(TourTest, TramStopsDwell) {
  TourOptions options;
  options.kind = TourKind::kTram;
  options.frames = 2000;
  options.target_speed = 0.6;
  const auto tour = GenerateTour(options);
  int stopped = 0;
  for (const auto& p : tour) {
    if (p.speed <= 0.001) ++stopped;
  }
  EXPECT_GT(stopped, 0);  // scheduled stops exist
}

// ---------------------------------------------------------------------------
// GroupTourGenerator

TEST(GroupTourTest, MemberTourIndependentOfGroupSize) {
  // The determinism contract: member m's tour is a function of
  // (base options, m) only — generating a bigger group must not perturb
  // an existing member's trajectory.
  GroupTourGenerator::Options options;
  options.base.frames = 120;
  options.base.seed = 21;
  options.members = 2;
  const GroupTourGenerator small(options);
  options.members = 6;
  const GroupTourGenerator large(options);
  const auto a = small.Tour(1);
  const auto b = large.Tour(1);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].position, b[i].position);
    EXPECT_DOUBLE_EQ(a[i].speed, b[i].speed);
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
  }
}

TEST(GroupTourTest, MembersJitterAroundSharedBase) {
  GroupTourGenerator::Options options;
  options.base.kind = TourKind::kTram;
  options.base.frames = 200;
  options.base.seed = 9;
  options.members = 4;
  options.position_jitter_m = 25.0;
  const GroupTourGenerator group(options);
  const auto& base = group.base();
  ASSERT_EQ(base.size(), 200u);
  for (int32_t m = 0; m < options.members; ++m) {
    const auto tour = group.Tour(m);
    ASSERT_EQ(tour.size(), base.size());
    for (size_t i = 0; i < tour.size(); ++i) {
      // Bounded drift: never further from the shared trajectory than the
      // jitter radius (boundary clamping only pulls positions inward).
      const double dx = tour[i].position.x - base[i].position.x;
      const double dy = tour[i].position.y - base[i].position.y;
      EXPECT_LE(std::hypot(dx, dy), options.position_jitter_m + 1e-9);
      // Still a valid tour: inside the space, speeds in range, shared
      // frame clock.
      EXPECT_GE(tour[i].position.x, options.base.space.lo(0));
      EXPECT_LE(tour[i].position.x, options.base.space.hi(0));
      EXPECT_GE(tour[i].position.y, options.base.space.lo(1));
      EXPECT_LE(tour[i].position.y, options.base.space.hi(1));
      EXPECT_GE(tour[i].speed, 0.001);
      EXPECT_LE(tour[i].speed, 1.0);
      EXPECT_DOUBLE_EQ(tour[i].time, base[i].time);
    }
  }
  // Distinct members ride distinct seats: their offsets differ.
  const auto first = group.Tour(0);
  const auto second = group.Tour(1);
  bool differs = false;
  for (size_t i = 0; i < first.size() && !differs; ++i) {
    differs = !(first[i].position == second[i].position);
  }
  EXPECT_TRUE(differs);
}

TEST(GroupTourTest, ZeroJitterRidesTheBaseExactly) {
  GroupTourGenerator::Options options;
  options.base.frames = 80;
  options.position_jitter_m = 0.0;
  options.speed_jitter = 0.0;
  options.members = 2;
  const GroupTourGenerator group(options);
  const auto tour = group.Tour(1);
  const auto& base = group.base();
  ASSERT_EQ(tour.size(), base.size());
  for (size_t i = 0; i < tour.size(); ++i) {
    EXPECT_EQ(tour[i].position, base[i].position);
    EXPECT_DOUBLE_EQ(tour[i].speed, base[i].speed);
  }
}

}  // namespace
}  // namespace mars::workload
