#include <memory>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/system.h"
#include "server/persistence.h"

namespace mars::core {
namespace {

std::unique_ptr<System> SmallSystem(
    server::Server::IndexKind kind =
        server::Server::IndexKind::kSupportRegion,
    workload::Placement placement = workload::Placement::kUniform) {
  System::Config config;
  config.scene.space = geometry::MakeBox2(0, 0, 2000, 2000);
  config.scene.object_count = 20;
  config.scene.levels = 3;
  config.scene.seed = 7;
  config.scene.placement = placement;
  config.index_kind = kind;
  auto system = System::Create(config);
  EXPECT_TRUE(system.ok());
  return std::move(system).value();
}

// Denser variant with the paper's object-per-window density, so the naive
// full-resolution baseline actually has data to move.
std::unique_ptr<System> DenseSystem() {
  System::Config config;
  config.scene.space = geometry::MakeBox2(0, 0, 2000, 2000);
  config.scene.object_count = 120;
  config.scene.levels = 3;  // ~50 KB objects: bigger than the test caches
  config.scene.seed = 9;
  auto system = System::Create(config);
  EXPECT_TRUE(system.ok());
  return std::move(system).value();
}

workload::TourOptions SmallTour(double speed, uint64_t seed = 3) {
  workload::TourOptions options;
  options.space = geometry::MakeBox2(0, 0, 2000, 2000);
  options.target_speed = speed;
  options.frames = 80;
  options.seed = seed;
  return options;
}

TEST(SystemTest, CreateFailsOnBadScene) {
  System::Config config;
  config.scene.object_count = 0;
  EXPECT_FALSE(System::Create(config).ok());
}

TEST(SystemTest, StreamingRunProducesMetrics) {
  auto system = SmallSystem();
  const auto tour = workload::GenerateTour(SmallTour(0.5));
  const RunMetrics metrics =
      system->RunStreaming(tour, client::StreamingClient::Options());
  EXPECT_EQ(metrics.frames, 80);
  EXPECT_GT(metrics.demand_bytes, 0);
  EXPECT_GT(metrics.node_accesses, 0);
  EXPECT_GT(metrics.total_response_seconds, 0.0);
  EXPECT_GT(metrics.tour_distance, 0.0);
}

TEST(SystemTest, RunsAreDeterministic) {
  auto system = SmallSystem();
  const auto tour = workload::GenerateTour(SmallTour(0.4));
  client::BufferedClient::Options options;
  options.seed = 5;
  const RunMetrics a = system->RunBuffered(tour, options);
  const RunMetrics b = system->RunBuffered(tour, options);
  EXPECT_EQ(a.demand_bytes, b.demand_bytes);
  EXPECT_EQ(a.prefetch_bytes, b.prefetch_bytes);
  EXPECT_DOUBLE_EQ(a.total_response_seconds, b.total_response_seconds);
  EXPECT_DOUBLE_EQ(a.cache_hit_rate, b.cache_hit_rate);
}

TEST(SystemTest, FasterClientsRetrieveLessData) {
  // The Fig. 8 effect on the end-to-end system: same distance, varying
  // speed, falling bytes.
  auto system = SmallSystem();
  auto run = [&](double speed) {
    workload::TourOptions tour_options = SmallTour(speed);
    tour_options.frames = 0;
    tour_options.distance = 1500.0;
    const auto tour = workload::GenerateTour(tour_options);
    return system
        ->RunStreaming(tour, client::StreamingClient::Options())
        .demand_bytes;
  };
  const int64_t slow = run(0.05);
  const int64_t fast = run(0.9);
  EXPECT_GT(slow, 2 * fast);
}

TEST(SystemTest, MotionAwareSystemFasterThanNaiveAtHighSpeed) {
  // The headline Fig. 14 comparison, shrunk to a dense small scene.
  auto system = DenseSystem();
  workload::TourOptions tour_options = SmallTour(0.9, 11);
  tour_options.frames = 200;
  const auto tour = workload::GenerateTour(tour_options);
  // Paper regime: the cache is small relative to a full-resolution object.
  client::BufferedClient::Options ma;
  ma.buffer_bytes = 32 * 1024;
  client::NaiveObjectClient::Options naive;
  naive.cache_bytes = 32 * 1024;
  const RunMetrics fast_ma = system->RunBuffered(tour, ma);
  const RunMetrics fast_naive = system->RunNaiveObject(tour, naive);
  EXPECT_LT(fast_ma.MeanResponseSeconds(),
            fast_naive.MeanResponseSeconds());
}

TEST(SystemTest, MotionAwarePrefetchBeatsNaivePrefetchOnTram) {
  auto system = DenseSystem();
  workload::TourOptions tour_options = SmallTour(0.5, 13);
  tour_options.kind = workload::TourKind::kTram;
  tour_options.frames = 250;
  const auto tour = workload::GenerateTour(tour_options);

  client::BufferedClient::Options ma;
  ma.motion_aware = true;
  ma.buffer_bytes = 128 * 1024;
  client::BufferedClient::Options naive = ma;
  naive.motion_aware = false;

  const RunMetrics m = system->RunBuffered(tour, ma);
  const RunMetrics n = system->RunBuffered(tour, naive);
  // The motion-aware prefetcher should use its prefetched bytes at least
  // as efficiently as the uniform ring.
  EXPECT_GE(m.data_utilization, n.data_utilization);
}

TEST(SystemTest, NaiveIndexCostsMoreIo) {
  auto support_system =
      SmallSystem(server::Server::IndexKind::kSupportRegion);
  auto naive_system = SmallSystem(server::Server::IndexKind::kNaivePoint);
  const auto tour = workload::GenerateTour(SmallTour(0.5, 17));
  const client::StreamingClient::Options options;
  const RunMetrics support = support_system->RunStreaming(tour, options);
  const RunMetrics naive = naive_system->RunStreaming(tour, options);
  // Identical data delivered...
  EXPECT_EQ(support.demand_bytes, naive.demand_bytes);
  // ...at lower I/O cost.
  EXPECT_LT(support.node_accesses, naive.node_accesses);
}

TEST(SystemTest, ZipfSceneWorksEndToEnd) {
  auto system = SmallSystem(server::Server::IndexKind::kSupportRegion,
                            workload::Placement::kZipf);
  const auto tour = workload::GenerateTour(SmallTour(0.5, 19));
  const RunMetrics metrics =
      system->RunBuffered(tour, client::BufferedClient::Options());
  EXPECT_EQ(metrics.frames, 80);
  EXPECT_GE(metrics.cache_hit_rate, 0.0);
  EXPECT_LE(metrics.cache_hit_rate, 1.0);
}

TEST(SystemTest, PersistedDatabaseReproducesIdenticalRuns) {
  // Serialize a scene, reload it, and run the same tour on both systems:
  // every metric must match exactly (the persisted form is the scene).
  System::Config config;
  config.scene.space = geometry::MakeBox2(0, 0, 2000, 2000);
  config.scene.object_count = 15;
  config.scene.levels = 2;
  config.scene.seed = 23;
  auto original = System::Create(config);
  ASSERT_TRUE(original.ok());

  const std::vector<uint8_t> bytes =
      server::SerializeDatabase((*original)->db());
  auto db = server::DeserializeDatabase(bytes);
  ASSERT_TRUE(db.ok());
  auto restored = System::FromDatabase(config, std::move(*db));

  const auto tour = workload::GenerateTour(SmallTour(0.5, 29));
  client::BufferedClient::Options options;
  options.seed = 3;
  const RunMetrics a = (*original)->RunBuffered(tour, options);
  const RunMetrics b = restored->RunBuffered(tour, options);
  EXPECT_EQ(a.demand_bytes, b.demand_bytes);
  EXPECT_EQ(a.prefetch_bytes, b.prefetch_bytes);
  EXPECT_EQ(a.node_accesses, b.node_accesses);
  EXPECT_DOUBLE_EQ(a.total_response_seconds, b.total_response_seconds);
  EXPECT_DOUBLE_EQ(a.cache_hit_rate, b.cache_hit_rate);
}

TEST(ExperimentTest, StandardLaddersMatchPaper) {
  EXPECT_EQ(StandardSpeeds().front(), 0.001);
  EXPECT_EQ(StandardSpeeds().back(), 1.0);
  EXPECT_EQ(StandardQueryFractions(),
            (std::vector<double>{0.05, 0.10, 0.15, 0.20}));
  EXPECT_EQ(StandardDatasetSizesMb(), (std::vector<int32_t>{20, 40, 60, 80}));
  EXPECT_EQ(StandardBufferSizesKb(), (std::vector<int32_t>{16, 32, 64, 128}));
}

TEST(ExperimentTest, MeanOfAveragesRuns) {
  RunMetrics a, b;
  a.frames = 10;
  a.demand_bytes = 100;
  a.cache_hit_rate = 0.4;
  b.frames = 20;
  b.demand_bytes = 300;
  b.cache_hit_rate = 0.8;
  const RunMetrics mean = MeanOf({a, b});
  EXPECT_EQ(mean.frames, 15);
  EXPECT_EQ(mean.demand_bytes, 200);
  EXPECT_DOUBLE_EQ(mean.cache_hit_rate, 0.6);
  EXPECT_EQ(MeanOf({}).frames, 0);
}

TEST(ExperimentTest, FormattingHelpers) {
  EXPECT_EQ(Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Fmt(10.0, 0), "10");
  EXPECT_EQ(FmtBytes(2048), "2.00 KB");
}

}  // namespace
}  // namespace mars::core
