#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/block_buffer.h"
#include "buffer/cost_model.h"
#include "buffer/lru_cache.h"
#include "buffer/optimal_split.h"
#include "buffer/prefetcher.h"
#include "buffer/residence_sim.h"
#include "buffer/sector_allocator.h"
#include "common/rng.h"
#include "motion/predictor.h"

namespace mars::buffer {
namespace {

// --- ExpectedResidenceTime / OptimalPosition (Eq. 2) -------------------------

TEST(OptimalSplitTest, SymmetricResidenceIsParabola) {
  // p_l == p_r: E[T] = n (a − n).
  for (int a : {4, 10, 20}) {
    for (int n = 1; n < a; ++n) {
      EXPECT_DOUBLE_EQ(ExpectedResidenceTime(a, n, 0.5, 0.5),
                       static_cast<double>(n) * (a - n));
    }
  }
}

TEST(OptimalSplitTest, ResidencePositive) {
  for (int n = 1; n < 10; ++n) {
    EXPECT_GT(ExpectedResidenceTime(10, n, 0.7, 0.3), 0.0);
  }
}

TEST(OptimalSplitTest, SymmetricOptimumIsCenter) {
  EXPECT_DOUBLE_EQ(OptimalPosition(10, 0.5, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(OptimalPosition(9, 0.2, 0.2), 4.5);
}

TEST(OptimalSplitTest, LeftBiasMovesOptimumLeftward) {
  // A left-leaning client needs more room on the left (larger n = distance
  // from the left absorbing wall).
  const double n_balanced = OptimalPosition(20, 0.5, 0.5);
  const double n_left = OptimalPosition(20, 0.7, 0.3);
  const double n_right = OptimalPosition(20, 0.3, 0.7);
  EXPECT_GT(n_left, n_balanced);
  EXPECT_LT(n_right, n_balanced);
  // Symmetry: mirroring probabilities mirrors the position.
  EXPECT_NEAR(n_left + n_right, 20.0, 1e-6);
}

// Property test: the closed-form Eq. (2) position matches brute-force
// maximization of the residence time over integer positions.
class OptimalPositionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(OptimalPositionPropertyTest, MatchesBruteForceArgmax) {
  const auto [a, p_l] = GetParam();
  const double p_r = 1.0 - p_l;
  int best_n = 1;
  double best_t = -1;
  for (int n = 1; n < a; ++n) {
    const double t = ExpectedResidenceTime(a, n, p_l, p_r);
    if (t > best_t) {
      best_t = t;
      best_n = n;
    }
  }
  const double n_opt = OptimalPosition(a, p_l, p_r);
  // The analytic optimum may round either way; it must be within one cell
  // of the discrete argmax and its residence time within a whisker of the
  // best.
  EXPECT_NEAR(n_opt, best_n, 1.0);
  const int rounded = std::clamp(static_cast<int>(std::lround(n_opt)), 1,
                                 a - 1);
  EXPECT_GE(ExpectedResidenceTime(a, rounded, p_l, p_r), 0.95 * best_t);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimalPositionPropertyTest,
    ::testing::Combine(::testing::Values(5, 10, 24, 60),
                       ::testing::Values(0.1, 0.3, 0.5, 0.65, 0.9)));

TEST(OptimalSplitTest, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(OptimalPosition(10, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(OptimalPosition(10, 1.0, 0.0), 9.0);
  EXPECT_DOUBLE_EQ(OptimalPosition(10, 0.0, 0.0), 5.0);
}

TEST(SplitBudgetTest, SumsAndBounds) {
  for (int budget : {0, 1, 5, 20, 100}) {
    for (double p_l : {0.0, 0.2, 0.5, 0.8, 1.0}) {
      const int left = SplitBudget(budget, p_l, 1.0 - p_l);
      EXPECT_GE(left, 0);
      EXPECT_LE(left, budget);
    }
  }
}

TEST(SplitBudgetTest, SymmetricSplitsEvenly) {
  EXPECT_EQ(SplitBudget(10, 0.5, 0.5), 5);
  EXPECT_EQ(SplitBudget(20, 0.5, 0.5), 10);
}

TEST(SplitBudgetTest, BiasGetsMoreBlocks) {
  const int left_biased = SplitBudget(20, 0.8, 0.2);
  const int right_biased = SplitBudget(20, 0.2, 0.8);
  EXPECT_GT(left_biased, 10);
  EXPECT_LT(right_biased, 10);
  EXPECT_EQ(left_biased + right_biased, 20);  // mirror symmetry
}

// --- Sector allocation -------------------------------------------------------

TEST(AllocatorTest, SumsToBudget) {
  common::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const int k = 1 << rng.UniformInt(0, 3);  // 1, 2, 4, 8
    std::vector<double> probs(k);
    double total = 0;
    for (double& p : probs) {
      p = rng.UniformDouble();
      total += p;
    }
    for (double& p : probs) p /= total;
    const int budget = static_cast<int>(rng.UniformInt(0, 64));
    const auto alloc = AllocateBuffer(probs, budget);
    ASSERT_EQ(alloc.size(), probs.size());
    EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0), budget);
    for (int n : alloc) EXPECT_GE(n, 0);
  }
}

TEST(AllocatorTest, DominantDirectionGetsMost) {
  const auto alloc = AllocateBuffer({0.7, 0.1, 0.1, 0.1}, 40);
  EXPECT_GT(alloc[0], alloc[1]);
  EXPECT_GT(alloc[0], alloc[2]);
  EXPECT_GT(alloc[0], alloc[3]);
  EXPECT_GT(alloc[0], 10);  // strictly more than uniform share
}

TEST(AllocatorTest, UniformProbabilitiesRoughlyUniform) {
  const auto alloc = AllocateBuffer({0.25, 0.25, 0.25, 0.25}, 40);
  for (int n : alloc) {
    EXPECT_GE(n, 8);
    EXPECT_LE(n, 12);
  }
}

TEST(AllocatorTest, SingleDirectionTakesAll) {
  const auto alloc = AllocateBuffer({1.0}, 17);
  ASSERT_EQ(alloc.size(), 1u);
  EXPECT_EQ(alloc[0], 17);
}

TEST(AllocatorTest, BestOrderingNoWorseThanDefault) {
  const std::vector<double> probs = {0.5, 0.05, 0.3, 0.15};
  const auto base = AllocateBuffer(probs, 30);
  const auto best = AllocateBufferBestOrdering(probs, 30);
  EXPECT_EQ(std::accumulate(best.begin(), best.end(), 0), 30);
  EXPECT_GE(AllocationScore(probs, best), AllocationScore(probs, base));
}

TEST(AllocatorTest, OrderingOnlySlightlyAffectsResidence) {
  // The paper's observation that the ordering search "can be omitted".
  const std::vector<double> probs = {0.4, 0.3, 0.2, 0.1};
  const auto base = AllocateBuffer(probs, 40);
  const auto best = AllocateBufferBestOrdering(probs, 40);
  common::Rng rng(5);
  const double t_base = SimulateStarResidence(probs, base, 0.2, 3000, rng);
  const double t_best = SimulateStarResidence(probs, best, 0.2, 3000, rng);
  EXPECT_LT(std::abs(t_best - t_base) / t_base, 0.25);
}

TEST(ResidenceSimTest, MoreBufferMeansLongerResidence) {
  const std::vector<double> probs = {0.4, 0.3, 0.2, 0.1};
  common::Rng rng(7);
  const double small = SimulateStarResidence(
      probs, AllocateBuffer(probs, 8), 0.2, 2000, rng);
  const double large = SimulateStarResidence(
      probs, AllocateBuffer(probs, 40), 0.2, 2000, rng);
  EXPECT_GT(large, small);
}

TEST(ResidenceSimTest, Eq2AllocationBeatsUniformOnSkewedMotion) {
  // The heart of the motion-aware claim: probability-shaped allocation
  // outlives a uniform one when motion is skewed.
  const std::vector<double> probs = {0.75, 0.1, 0.1, 0.05};
  const int budget = 24;
  const auto shaped = AllocateBuffer(probs, budget);
  const std::vector<int32_t> uniform(4, budget / 4);
  common::Rng rng(9);
  const double t_shaped =
      SimulateStarResidence(probs, shaped, 0.2, 4000, rng);
  const double t_uniform =
      SimulateStarResidence(probs, uniform, 0.2, 4000, rng);
  EXPECT_GT(t_shaped, t_uniform);
}

// --- Cost model (Eq. 1) -----------------------------------------------------

TEST(CostModelTest, MatchesClosedForm) {
  TransferCostParams params;
  params.connection_cost = 0.5;
  params.per_byte_cost = 0.001;
  params.block_bytes = 100;
  // 3 misses fetching 1, 2, 4 blocks: 3·0.5 + 0.1·(1+2+4) = 2.2.
  EXPECT_NEAR(TotalTransferCost(params, {1, 2, 4}), 2.2, 1e-12);
}

TEST(CostModelTest, NoMissesNoCost) {
  EXPECT_DOUBLE_EQ(TotalTransferCost(TransferCostParams(), {}), 0.0);
}

TEST(CostModelTest, FewerMissesCheaperForSameBlocks) {
  // Eq. (1)'s point: batching the same data into fewer misses saves the
  // connection costs.
  TransferCostParams params;
  params.connection_cost = 0.2;
  EXPECT_LT(TotalTransferCost(params, {6}),
            TotalTransferCost(params, {1, 1, 1, 1, 1, 1}));
}

// --- LruCache ---------------------------------------------------------------

TEST(LruCacheTest, BasicHitMiss) {
  LruCache<int> cache(100);
  EXPECT_FALSE(cache.Touch(1));
  cache.Put(1, 40);
  EXPECT_TRUE(cache.Touch(1));
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(100);
  cache.Put(1, 40);
  cache.Put(2, 40);
  cache.Touch(1);             // 2 is now LRU
  const auto evicted = cache.Put(3, 40);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(LruCacheTest, CapacityTracked) {
  LruCache<int> cache(100);
  cache.Put(1, 60);
  cache.Put(2, 30);
  EXPECT_EQ(cache.used_bytes(), 90);
  cache.Put(3, 30);  // evicts 1
  EXPECT_LE(cache.used_bytes(), 100);
  EXPECT_FALSE(cache.Contains(1));
}

TEST(LruCacheTest, OversizedEntryAdmittedAlone) {
  LruCache<int> cache(50);
  cache.Put(1, 10);
  cache.Put(2, 500);  // bigger than capacity
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_FALSE(cache.Contains(1));
}

TEST(LruCacheTest, UpdateExistingKeyAdjustsBytes) {
  LruCache<int> cache(100);
  cache.Put(1, 30);
  cache.Put(1, 50);
  EXPECT_EQ(cache.used_bytes(), 50);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, Erase) {
  LruCache<int> cache(100);
  cache.Put(1, 30);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.used_bytes(), 0);
}

// --- BlockBuffer ------------------------------------------------------------

TEST(BlockBufferTest, MissThenHitAfterDemandFill) {
  BlockBuffer buffer(10000);
  EXPECT_FALSE(buffer.Lookup(5, 0.5));
  buffer.InsertDemand(5, 0.5, 100, 1.0);
  EXPECT_TRUE(buffer.Lookup(5, 0.5));
  EXPECT_TRUE(buffer.Lookup(5, 0.8));   // coarser need: still a hit
  EXPECT_FALSE(buffer.Lookup(5, 0.2));  // finer need: miss
  EXPECT_EQ(buffer.stats().hits, 2);
  EXPECT_EQ(buffer.stats().misses, 2);
}

TEST(BlockBufferTest, ResolutionUpgradeMerges) {
  BlockBuffer buffer(10000);
  buffer.InsertDemand(5, 0.8, 100, 1.0);
  EXPECT_FALSE(buffer.Lookup(5, 0.3));
  buffer.InsertDemand(5, 0.3, 200, 1.0);  // the missing band
  EXPECT_TRUE(buffer.Lookup(5, 0.3));
  EXPECT_DOUBLE_EQ(buffer.HeldWMin(5), 0.3);
}

TEST(BlockBufferTest, UtilizationCountsUsedPrefetches) {
  BlockBuffer buffer(10000);
  buffer.InsertPrefetch(1, 0.5, 100, 0.9);
  buffer.InsertPrefetch(2, 0.5, 300, 0.8);
  EXPECT_DOUBLE_EQ(buffer.stats().Utilization(), 0.0);
  EXPECT_TRUE(buffer.Lookup(1, 0.5));
  EXPECT_NEAR(buffer.stats().Utilization(), 0.25, 1e-12);  // 100 / 400
  EXPECT_TRUE(buffer.Lookup(1, 0.5));  // re-hit doesn't double count
  EXPECT_NEAR(buffer.stats().Utilization(), 0.25, 1e-12);
  EXPECT_TRUE(buffer.Lookup(2, 0.6));
  EXPECT_NEAR(buffer.stats().Utilization(), 1.0, 1e-12);
}

TEST(BlockBufferTest, EvictsLowestPriority) {
  BlockBuffer buffer(2 * BlockBuffer::kEntryOverheadBytes + 250);
  buffer.InsertPrefetch(1, 0.5, 100, 0.9);
  buffer.InsertPrefetch(2, 0.5, 100, 0.1);
  // Inserting a third block overflows; block 2 (lowest priority) must go.
  buffer.InsertPrefetch(3, 0.5, 50, 0.5);
  EXPECT_TRUE(buffer.Contains(1));
  EXPECT_FALSE(buffer.Contains(2));
  EXPECT_TRUE(buffer.Contains(3));
}

TEST(BlockBufferTest, DecayAgesPriorities) {
  BlockBuffer buffer(2 * BlockBuffer::kEntryOverheadBytes + 250);
  buffer.InsertPrefetch(1, 0.5, 100, 0.6);
  for (int i = 0; i < 10; ++i) buffer.DecayPriorities(0.5);
  buffer.InsertPrefetch(2, 0.5, 100, 0.5);
  buffer.InsertPrefetch(3, 0.5, 50, 0.4);  // overflow: stale block 1 goes
  EXPECT_FALSE(buffer.Contains(1));
  EXPECT_TRUE(buffer.Contains(2));
}

TEST(BlockBufferTest, EntryOverheadCharged) {
  BlockBuffer buffer(10000);
  buffer.InsertDemand(1, 0.5, 0, 1.0);  // data-less block still costs
  EXPECT_EQ(buffer.used_bytes(), BlockBuffer::kEntryOverheadBytes);
}

TEST(BlockBufferTest, HeldWMinInfiniteWhenAbsent) {
  BlockBuffer buffer(1000);
  EXPECT_TRUE(std::isinf(buffer.HeldWMin(7)));
}

TEST(BlockBufferTest, PeekDoesNotTouchStats) {
  BlockBuffer buffer(10000);
  buffer.InsertPrefetch(1, 0.5, 100, 0.9);
  EXPECT_TRUE(buffer.Peek(1, 0.5));
  EXPECT_FALSE(buffer.Peek(1, 0.2));
  EXPECT_FALSE(buffer.Peek(99, 0.5));
  EXPECT_EQ(buffer.stats().lookups, 0);
  EXPECT_EQ(buffer.stats().used_prefetched_bytes, 0);  // no used credit
}

TEST(BlockBufferTest, PinnedBlocksSurviveEviction) {
  BlockBuffer buffer(2 * BlockBuffer::kEntryOverheadBytes + 150);
  buffer.InsertDemand(1, 0.5, 100, 0.1);  // lowest priority
  buffer.Pin(1);
  buffer.InsertPrefetch(2, 0.5, 100, 0.9);
  buffer.InsertPrefetch(3, 0.5, 100, 0.8);  // forces eviction
  EXPECT_TRUE(buffer.Contains(1));   // pinned: never evicted
  EXPECT_TRUE(buffer.Contains(2));
  EXPECT_FALSE(buffer.Contains(3));  // 3 could not displace 2
}

TEST(BlockBufferTest, PinnedBytesDoNotCountAgainstCapacity) {
  BlockBuffer buffer(BlockBuffer::kEntryOverheadBytes + 200);
  buffer.Pin(1);
  buffer.InsertDemand(1, 0.1, 100000, 1.0);  // far over capacity
  // A pinned oversized block leaves the full capacity for prefetch.
  buffer.InsertPrefetch(2, 0.5, 150, 0.5);
  EXPECT_TRUE(buffer.Contains(1));
  EXPECT_TRUE(buffer.Contains(2));
}

TEST(BlockBufferTest, UnpinRestoresCapacityPressure) {
  BlockBuffer buffer(2 * BlockBuffer::kEntryOverheadBytes + 150);
  buffer.Pin(1);  // the client pins view blocks before fetching them
  buffer.InsertDemand(1, 0.1, 5000, 0.05);
  buffer.InsertPrefetch(2, 0.5, 100, 0.9);
  EXPECT_TRUE(buffer.Contains(1));
  buffer.Unpin(1);  // 5000 bytes now charged: must evict something
  EXPECT_LE(buffer.used_bytes(), buffer.capacity_bytes() +
                                     5000 + BlockBuffer::kEntryOverheadBytes);
  // Block 1 is the lowest priority and way oversized: it goes.
  EXPECT_FALSE(buffer.Contains(1));
  EXPECT_TRUE(buffer.Contains(2));
}

TEST(BlockBufferTest, PinAbsentBlockCreatesPlaceholder) {
  BlockBuffer buffer(10000);
  buffer.Pin(42);
  EXPECT_TRUE(buffer.Contains(42));
  EXPECT_TRUE(buffer.IsPinned(42));
  EXPECT_FALSE(buffer.Peek(42, 1.0));  // placeholder holds no data
  buffer.InsertDemand(42, 0.5, 100, 1.0);
  EXPECT_TRUE(buffer.Peek(42, 0.5));
  buffer.Unpin(42);
  EXPECT_FALSE(buffer.IsPinned(42));
}

TEST(BlockBufferTest, CanAdmitRespectsPriorities) {
  BlockBuffer buffer(2 * BlockBuffer::kEntryOverheadBytes + 200);
  buffer.InsertPrefetch(1, 0.5, 100, 0.6);
  buffer.InsertPrefetch(2, 0.5, 100, 0.4);
  // Admitting 100 bytes requires evicting one of the resident blocks.
  EXPECT_TRUE(buffer.CanAdmit(100, 0.5));   // can displace block 2 (0.4)
  EXPECT_FALSE(buffer.CanAdmit(100, 0.3));  // cannot displace anything
  EXPECT_TRUE(buffer.CanAdmit(250, 0.7));   // can displace both
  EXPECT_FALSE(buffer.CanAdmit(250, 0.5));  // can only displace block 2
}

TEST(BlockBufferTest, CanAdmitIgnoresPinnedBlocks) {
  BlockBuffer buffer(BlockBuffer::kEntryOverheadBytes + 100);
  buffer.InsertDemand(1, 0.5, 100, 0.0);  // evictable by priority...
  buffer.Pin(1);                          // ...but pinned
  // Pinned bytes are exempt from the capacity, so there is free room.
  EXPECT_TRUE(buffer.CanAdmit(50, 0.1));
  // But nothing beyond the free room can be reclaimed from pinned data.
  EXPECT_FALSE(buffer.CanAdmit(200, 1.0));
}

// Reference-model fuzz: a trivially correct map-based reimplementation of
// the buffer's residency semantics, driven with random operation
// sequences; BlockBuffer must agree on every observable.
class BlockBufferFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockBufferFuzzTest, AgreesWithReferenceModel) {
  common::Rng rng(GetParam() * 101);
  // Large capacity: residency semantics only (eviction policy is covered
  // by targeted tests above).
  BlockBuffer buffer(100'000'000);
  struct Ref {
    double w_min = 2.0;
    bool pinned = false;
  };
  std::unordered_map<int64_t, Ref> reference;

  for (int op = 0; op < 5000; ++op) {
    const int64_t block = rng.UniformInt(0, 30);
    const double w = rng.UniformInt(0, 10) / 10.0;
    switch (rng.UniformInt(0, 5)) {
      case 0: {
        buffer.InsertDemand(block, w, rng.UniformInt(0, 100), 0.5);
        auto& r = reference[block];
        r.w_min = std::min(r.w_min, w);
        break;
      }
      case 1: {
        buffer.InsertPrefetch(block, w, rng.UniformInt(0, 100), 0.5);
        auto& r = reference[block];
        r.w_min = std::min(r.w_min, w);
        break;
      }
      case 2: {
        const bool expected =
            reference.contains(block) && reference[block].w_min <= w;
        EXPECT_EQ(buffer.Peek(block, w), expected) << "op " << op;
        break;
      }
      case 3: {
        const bool expected =
            reference.contains(block) && reference[block].w_min <= w;
        EXPECT_EQ(buffer.Lookup(block, w), expected) << "op " << op;
        break;
      }
      case 4: {
        buffer.Pin(block);
        reference[block];  // pin creates a placeholder
        reference[block].pinned = true;
        break;
      }
      default: {
        buffer.Unpin(block);
        if (reference.contains(block)) reference[block].pinned = false;
        break;
      }
    }
    EXPECT_EQ(buffer.IsPinned(block),
              reference.contains(block) && reference[block].pinned);
    const double expected_held = reference.contains(block)
                                     ? reference[block].w_min
                                     : std::numeric_limits<double>::infinity();
    if (std::isinf(expected_held)) {
      EXPECT_TRUE(std::isinf(buffer.HeldWMin(block)));
    } else {
      EXPECT_DOUBLE_EQ(buffer.HeldWMin(block), expected_held);
    }
  }
  // Stats consistency at the end.
  EXPECT_EQ(buffer.stats().hits + buffer.stats().misses,
            buffer.stats().lookups);
  EXPECT_LE(buffer.stats().used_prefetched_bytes,
            buffer.stats().prefetched_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockBufferFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// --- Prefetchers ------------------------------------------------------------

TEST(PrefetcherTest, NaiveFillsRingsAroundClient) {
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 1000, 1000),
                                     20, 20);
  NaivePrefetcher naive;
  const auto plan = naive.Plan(grid, {500, 500}, 0.5, 8);
  ASSERT_EQ(plan.items.size(), 8u);
  const auto center = grid.BlockOfPoint({500, 500});
  for (const auto& item : plan.items) {
    const auto c = grid.BlockCoordOf(item.block);
    EXPECT_EQ(std::max(std::abs(c.i - center.i), std::abs(c.j - center.j)),
              1);  // budget of 8 = exactly the first ring
    EXPECT_DOUBLE_EQ(item.priority, 0.5);
    EXPECT_DOUBLE_EQ(item.w_min, 0.5);
  }
}

TEST(PrefetcherTest, NaiveRespectsBudget) {
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 1000, 1000),
                                     20, 20);
  NaivePrefetcher naive;
  EXPECT_EQ(naive.Plan(grid, {500, 500}, 0.2, 30).items.size(), 30u);
  EXPECT_TRUE(naive.Plan(grid, {500, 500}, 0.2, 0).items.empty());
}

TEST(PrefetcherTest, MotionAwarePrefersHeading) {
  // An eastbound client's plan should put most of its blocks east.
  motion::MotionPredictor predictor;
  for (int t = 0; t < 50; ++t) predictor.Observe({10.0 * t, 500});
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 1000, 1000),
                                     20, 20);
  MotionAwarePrefetcher prefetcher;
  common::Rng rng(11);
  const auto plan =
      prefetcher.Plan(predictor, grid, {490, 500}, 0.5, 24, rng);
  ASSERT_FALSE(plan.items.empty());
  int east = 0, west = 0;
  for (const auto& item : plan.items) {
    const auto center = grid.BlockBox(item.block).Center();
    (center[0] > 490 ? east : west)++;
  }
  EXPECT_GT(east, west * 2);
}

TEST(PrefetcherTest, MotionAwareRespectsBudget) {
  motion::MotionPredictor predictor;
  for (int t = 0; t < 50; ++t) predictor.Observe({5.0 * t, 5.0 * t});
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 1000, 1000),
                                     20, 20);
  MotionAwarePrefetcher prefetcher;
  common::Rng rng(13);
  for (int budget : {0, 1, 10, 50}) {
    const auto plan =
        prefetcher.Plan(predictor, grid, {250, 250}, 0.5, budget, rng);
    EXPECT_LE(static_cast<int>(plan.items.size()), budget);
  }
}

TEST(PrefetcherTest, SpeedSetsPrefetchResolution) {
  motion::MotionPredictor predictor;
  for (int t = 0; t < 50; ++t) predictor.Observe({10.0 * t, 500});
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 1000, 1000),
                                     20, 20);
  MotionAwarePrefetcher prefetcher;
  common::Rng rng(15);
  const auto slow =
      prefetcher.Plan(predictor, grid, {490, 500}, 0.1, 10, rng);
  const auto fast =
      prefetcher.Plan(predictor, grid, {490, 500}, 0.9, 10, rng);
  ASSERT_FALSE(slow.items.empty());
  ASSERT_FALSE(fast.items.empty());
  EXPECT_DOUBLE_EQ(slow.items[0].w_min, 0.1);
  EXPECT_DOUBLE_EQ(fast.items[0].w_min, 0.9);
}

TEST(PrefetchPlanTest, DedupeKeepsHigherPriorityAndFinerResolution) {
  // Block 7 appears twice — e.g. reachable from two direction sectors —
  // once strong/coarse and once weak/fine. The merged item must carry
  // the stronger priority and the finer (smaller) w_min.
  PrefetchPlan plan;
  plan.items = {{5, 0.9, 0.5},
                {7, 0.6, 0.8},
                {3, 0.4, 0.5},
                {7, 0.2, 0.3}};
  plan.Dedupe();
  ASSERT_EQ(plan.items.size(), 3u);
  EXPECT_EQ(plan.items[0].block, 5);
  EXPECT_EQ(plan.items[1].block, 7);
  EXPECT_DOUBLE_EQ(plan.items[1].priority, 0.6);
  EXPECT_DOUBLE_EQ(plan.items[1].w_min, 0.3);
  EXPECT_EQ(plan.items[2].block, 3);
}

TEST(PrefetchPlanTest, DedupeIsNoopWhenUnique) {
  // A duplicate-free plan must come back exactly as it went in — order
  // included, even where priorities tie (a re-sort could reorder ties
  // and silently change which blocks survive a budget cut downstream).
  PrefetchPlan plan;
  plan.items = {{4, 0.5, 0.2}, {9, 0.5, 0.4}, {1, 0.5, 0.6}, {2, 0.7, 0.1}};
  const auto before = plan.items;
  plan.Dedupe();
  ASSERT_EQ(plan.items.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(plan.items[i].block, before[i].block) << "index " << i;
    EXPECT_DOUBLE_EQ(plan.items[i].priority, before[i].priority);
    EXPECT_DOUBLE_EQ(plan.items[i].w_min, before[i].w_min);
  }
}

TEST(PrefetcherTest, PlansAreDuplicateFree) {
  motion::MotionPredictor predictor;
  for (int t = 0; t < 50; ++t) predictor.Observe({10.0 * t, 500});
  const geometry::GridPartition grid(geometry::MakeBox2(0, 0, 1000, 1000),
                                     20, 20);
  MotionAwarePrefetcher prefetcher;
  common::Rng rng(11);
  const auto ma = prefetcher.Plan(predictor, grid, {490, 500}, 0.5, 24, rng);
  NaivePrefetcher naive;
  const auto nv = naive.Plan(grid, {500, 500}, 0.5, 30);
  for (const auto* plan : {&ma, &nv}) {
    std::unordered_set<int64_t> seen;
    for (const auto& item : plan->items) {
      EXPECT_TRUE(seen.insert(item.block).second)
          << "block " << item.block << " planned twice";
    }
  }
}

}  // namespace
}  // namespace mars::buffer
