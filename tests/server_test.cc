#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "geometry/box.h"
#include "index/record.h"
#include "index/sharded_index.h"
#include "server/admission.h"
#include "server/hot_cache.h"
#include "server/inflight_table.h"
#include "server/object_db.h"
#include "server/server.h"
#include "server/session_table.h"
#include "workload/scene.h"

namespace mars::server {
namespace {

workload::SceneOptions SmallScene(uint64_t seed = 5) {
  workload::SceneOptions options;
  options.space = geometry::MakeBox2(0, 0, 1000, 1000);
  options.object_count = 8;
  options.levels = 2;
  options.seed = seed;
  return options;
}

TEST(ObjectDatabaseTest, RecordTableShape) {
  auto db = workload::GenerateScene(SmallScene());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->object_count(), 8);
  ASSERT_TRUE(db->finalized());

  // One base record per object plus one per coefficient.
  int64_t expected = 0;
  for (int32_t i = 0; i < db->object_count(); ++i) {
    expected += 1 + db->object(i).coefficient_count();
  }
  EXPECT_EQ(static_cast<int64_t>(db->records().size()), expected);

  int base_records = 0;
  for (const index::CoeffRecord& r : db->records()) {
    if (r.is_base()) {
      ++base_records;
      EXPECT_DOUBLE_EQ(r.w, 1.0);
    } else {
      EXPECT_GE(r.w, 0.0);
      EXPECT_LE(r.w, 1.0);
      EXPECT_EQ(r.wire_bytes, index::kCoefficientWireBytes);
    }
    EXPECT_GE(r.object_id, 0);
    EXPECT_LT(r.object_id, 8);
  }
  EXPECT_EQ(base_records, 8);
}

TEST(ObjectDatabaseTest, TotalBytesConsistent) {
  auto db = workload::GenerateScene(SmallScene());
  ASSERT_TRUE(db.ok());
  int64_t sum_records = 0;
  for (const auto& r : db->records()) sum_records += r.wire_bytes;
  EXPECT_EQ(db->total_bytes(), sum_records);
  int64_t sum_objects = 0;
  for (int32_t i = 0; i < db->object_count(); ++i) {
    sum_objects += db->ObjectFullBytes(i);
  }
  EXPECT_EQ(db->total_bytes(), sum_objects);
}

TEST(ObjectDatabaseTest, BoundsContainRecords) {
  auto db = workload::GenerateScene(SmallScene());
  ASSERT_TRUE(db.ok());
  for (const auto& r : db->records()) {
    EXPECT_TRUE(db->object_bounds()[r.object_id].Contains(r.support_bounds));
  }
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = workload::GenerateScene(SmallScene());
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<ObjectDatabase>(std::move(*db));
    server_ = std::make_unique<Server>(db_.get(),
                                       Server::IndexKind::kSupportRegion);
  }

  geometry::Box2 WindowAroundObject(int32_t obj) const {
    const auto& b = db_->object_bounds()[obj];
    return geometry::MakeBox2(b.lo(0) - 10, b.lo(1) - 10, b.hi(0) + 10,
                              b.hi(1) + 10);
  }

  std::unique_ptr<ObjectDatabase> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, FullBandReturnsEverythingForObject) {
  ClientSession session;
  const auto result =
      server_->Execute({SubQuery{WindowAroundObject(0), 0.0, 1.0}},
                       &session);
  // At least the object's base record plus its coefficients.
  EXPECT_GE(static_cast<int64_t>(result.records.size()),
            1 + db_->object(0).coefficient_count());
  EXPECT_GT(result.response_bytes, Server::kResponseHeaderBytes);
  EXPECT_GT(result.request_bytes, 0);
}

TEST_F(ServerTest, SessionFiltersRepeatedDelivery) {
  ClientSession session;
  const SubQuery q{WindowAroundObject(0), 0.0, 1.0};
  const auto first = server_->Execute({q}, &session);
  EXPECT_FALSE(first.records.empty());
  const auto second = server_->Execute({q}, &session);
  EXPECT_TRUE(second.records.empty());
  EXPECT_EQ(second.filtered_duplicates,
            static_cast<int64_t>(first.records.size()));
  EXPECT_EQ(second.response_bytes, Server::kResponseHeaderBytes);
}

TEST_F(ServerTest, ExecuteRecordsDeliveriesAsPending) {
  ClientSession session;
  const SubQuery q{WindowAroundObject(0), 0.0, 1.0};
  const auto result = server_->Execute({q}, &session);
  ASSERT_FALSE(result.records.empty());
  // Nothing is committed until the client acks.
  EXPECT_TRUE(session.delivered.empty());
  EXPECT_EQ(session.pending.size(), result.records.size());
  for (index::RecordId id : result.records) {
    EXPECT_TRUE(session.pending.contains(id));
  }
}

TEST_F(ServerTest, AckCommitsPendingDeliveries) {
  ClientSession session;
  const SubQuery q{WindowAroundObject(0), 0.0, 1.0};
  const auto first = server_->Execute({q}, &session);
  AckPending(&session);
  EXPECT_EQ(session.delivered.size(), first.records.size());
  EXPECT_TRUE(session.pending.empty());
  EXPECT_EQ(session.acked_batches, 1);
  // Committed records stay filtered.
  const auto second = server_->Execute({q}, &session);
  EXPECT_TRUE(second.records.empty());
}

TEST_F(ServerTest, RollbackCausesResend) {
  ClientSession session;
  const SubQuery q{WindowAroundObject(0), 0.0, 1.0};
  const auto first = server_->Execute({q}, &session);
  ASSERT_FALSE(first.records.empty());
  // The response was lost in flight: the client never installed it.
  RollbackPending(&session);
  EXPECT_TRUE(session.delivered.empty());
  EXPECT_TRUE(session.pending.empty());
  EXPECT_EQ(session.rolled_back_batches, 1);
  // The same query re-delivers the full set.
  const auto again = server_->Execute({q}, &session);
  std::unordered_set<index::RecordId> a(first.records.begin(),
                                        first.records.end());
  std::unordered_set<index::RecordId> b(again.records.begin(),
                                        again.records.end());
  EXPECT_EQ(a, b);
}

TEST_F(ServerTest, PendingFiltersDuplicatesBeforeAck) {
  // Back-to-back identical queries with no ack in between must not
  // double-deliver: the pending set participates in filtering.
  ClientSession session;
  const SubQuery q{WindowAroundObject(0), 0.0, 1.0};
  const auto first = server_->Execute({q}, &session);
  const auto second = server_->Execute({q}, &session);
  EXPECT_FALSE(first.records.empty());
  EXPECT_TRUE(second.records.empty());
  EXPECT_EQ(second.filtered_duplicates,
            static_cast<int64_t>(first.records.size()));
}

TEST_F(ServerTest, BandQueriesArePartition) {
  // [w1, 1] then [0, w1) must together equal [0, 1] with no overlap.
  ClientSession session_full;
  const auto full = server_->Execute(
      {SubQuery{WindowAroundObject(1), 0.0, 1.0}}, &session_full);

  ClientSession session_split;
  const auto coarse = server_->Execute(
      {SubQuery{WindowAroundObject(1), 0.5, 1.0}}, &session_split);
  const auto fine = server_->Execute(
      {SubQuery{WindowAroundObject(1), 0.0, 0.5}}, &session_split);
  // The session filter removes the w == 0.5 boundary duplicates, if any.
  EXPECT_EQ(coarse.records.size() + fine.records.size(),
            full.records.size());
}

TEST_F(ServerTest, PerQueryAttribution) {
  ClientSession session;
  const std::vector<SubQuery> queries = {
      SubQuery{WindowAroundObject(0), 0.0, 1.0},
      SubQuery{WindowAroundObject(1), 0.0, 1.0},
  };
  const auto result = server_->Execute(queries, &session);
  ASSERT_EQ(result.per_query.size(), 2u);
  ASSERT_EQ(result.per_query_bytes.size(), 2u);
  size_t total = 0;
  int64_t bytes = Server::kResponseHeaderBytes;
  for (size_t i = 0; i < 2; ++i) {
    total += result.per_query[i].size();
    bytes += result.per_query_bytes[i];
  }
  EXPECT_EQ(total, result.records.size());
  EXPECT_EQ(bytes, result.response_bytes);
}

TEST_F(ServerTest, DuplicateAcrossSubQueriesDeliveredOnce) {
  ClientSession session;
  const SubQuery q{WindowAroundObject(2), 0.0, 1.0};
  const auto result = server_->Execute({q, q}, &session);
  EXPECT_TRUE(result.per_query[1].empty());
  EXPECT_GT(result.filtered_duplicates, 0);
  std::unordered_set<index::RecordId> unique(result.records.begin(),
                                             result.records.end());
  EXPECT_EQ(unique.size(), result.records.size());
}

TEST_F(ServerTest, NodeAccessesPositiveAndResettable) {
  ClientSession session;
  server_->ResetStats();
  const auto result = server_->Execute(
      {SubQuery{WindowAroundObject(0), 0.0, 1.0}}, &session);
  EXPECT_GT(result.node_accesses, 0);
  EXPECT_EQ(server_->node_accesses(), result.node_accesses);
  server_->ResetStats();
  EXPECT_EQ(server_->node_accesses(), 0);
}

TEST_F(ServerTest, ObjectQueryDeliversOnceAndCountsBytes) {
  std::unordered_set<int32_t> delivered;
  const auto first =
      server_->ExecuteObjectQuery(WindowAroundObject(3), &delivered);
  ASSERT_FALSE(first.objects.empty());
  int64_t expected = Server::kResponseHeaderBytes;
  for (int32_t obj : first.objects) {
    expected += db_->ObjectFullBytes(obj);
  }
  EXPECT_EQ(first.response_bytes, expected);
  const auto second =
      server_->ExecuteObjectQuery(WindowAroundObject(3), &delivered);
  EXPECT_TRUE(second.objects.empty());
  EXPECT_EQ(second.all_objects.size(), first.all_objects.size());
}

TEST_F(ServerTest, ListObjectsMatchesBruteForce) {
  const geometry::Box2 window = geometry::MakeBox2(0, 0, 600, 600);
  auto listing = server_->ListObjects(window);
  std::vector<int32_t> expected;
  for (int32_t i = 0; i < db_->object_count(); ++i) {
    const auto& b = db_->object_bounds()[i];
    const geometry::Box2 footprint({b.lo(0), b.lo(1)}, {b.hi(0), b.hi(1)});
    if (footprint.Intersects(window)) expected.push_back(i);
  }
  std::sort(listing.objects.begin(), listing.objects.end());
  EXPECT_EQ(listing.objects, expected);
}

TEST(ServerIndexKindTest, BothIndexesServeIdenticalResults) {
  auto db = workload::GenerateScene(SmallScene(11));
  ASSERT_TRUE(db.ok());
  ObjectDatabase database = std::move(*db);
  Server support(&database, Server::IndexKind::kSupportRegion);
  Server naive(&database, Server::IndexKind::kNaivePoint);

  const geometry::Box2 window = geometry::MakeBox2(100, 100, 500, 500);
  for (double w_min : {0.0, 0.3, 0.8}) {
    ClientSession sa, sb;
    auto ra = support.Execute({SubQuery{window, w_min, 1.0}}, &sa);
    auto rb = naive.Execute({SubQuery{window, w_min, 1.0}}, &sb);
    std::sort(ra.records.begin(), ra.records.end());
    std::sort(rb.records.begin(), rb.records.end());
    EXPECT_EQ(ra.records, rb.records) << "w_min " << w_min;
    EXPECT_EQ(ra.response_bytes, rb.response_bytes);
  }
}

// --- Online ingest --------------------------------------------------------

TEST(ServerIngestTest, ObjectVisibleOnlyAfterCommit) {
  auto db = workload::GenerateScene(SmallScene(13));
  ASSERT_TRUE(db.ok());
  ObjectDatabase database = std::move(*db);

  // A donor scene supplies the mesh to ingest mid-run.
  auto donor = workload::GenerateScene(SmallScene(31));
  ASSERT_TRUE(donor.ok());

  Server::Options options;
  options.shards = 4;
  Server server(&database, options);
  ASSERT_TRUE(server.ingest_enabled());

  const geometry::Box2 everything = geometry::MakeBox2(-5000, -5000,
                                                       5000, 5000);
  ClientSession warm;
  const auto before =
      server.Execute({SubQuery{everything, 0.0, 1.0}}, &warm);

  const int32_t old_objects = database.object_count();
  const size_t old_records = database.records().size();
  const int32_t obj_id = server.AddObject(donor->object(0));
  EXPECT_EQ(obj_id, old_objects);
  const int64_t new_records =
      static_cast<int64_t>(database.records().size() - old_records);
  EXPECT_GT(new_records, 0);
  EXPECT_EQ(server.staged_records(), new_records);
  EXPECT_EQ(server.ingest_epoch(), 0);

  // Invisible until the epoch swap: identical result set, and the naive
  // object path does not list it either.
  ClientSession staged_session;
  const auto staged =
      server.Execute({SubQuery{everything, 0.0, 1.0}}, &staged_session);
  EXPECT_EQ(staged.records.size(), before.records.size());
  auto listing = server.ListObjects(everything);
  EXPECT_EQ(std::count(listing.objects.begin(), listing.objects.end(),
                       obj_id),
            0);

  EXPECT_EQ(server.CommitIngest(), new_records);
  EXPECT_EQ(server.staged_records(), 0);
  EXPECT_EQ(server.ingest_epoch(), 1);

  // Visible everywhere now.
  ClientSession fresh;
  const auto after =
      server.Execute({SubQuery{everything, 0.0, 1.0}}, &fresh);
  EXPECT_EQ(after.records.size(),
            before.records.size() + static_cast<size_t>(new_records));
  int64_t ingested_seen = 0;
  for (index::RecordId id : after.records) {
    if (database.record(id).object_id == obj_id) ++ingested_seen;
  }
  EXPECT_EQ(ingested_seen, new_records);
  listing = server.ListObjects(everything);
  EXPECT_EQ(std::count(listing.objects.begin(), listing.objects.end(),
                       obj_id),
            1);
}

TEST(ServerIngestTest, CommitLeavesOtherShardsUntouched) {
  auto db = workload::GenerateScene(SmallScene(17));
  ASSERT_TRUE(db.ok());
  ObjectDatabase database = std::move(*db);
  auto donor = workload::GenerateScene(SmallScene(37));
  ASSERT_TRUE(donor.ok());

  Server::Options options;
  options.shards = 8;
  Server server(&database, options);

  // Touch every shard's counters with a broad query first.
  ClientSession session;
  server.Execute(
      {SubQuery{geometry::MakeBox2(-5000, -5000, 5000, 5000), 0.0, 1.0}},
      &session);
  const auto before = server.sharded_index().Stats();

  server.AddObject(donor->object(0));
  server.CommitIngest();
  const auto after = server.sharded_index().Stats();

  ASSERT_EQ(before.size(), after.size());
  int64_t rebuilt = 0;
  for (size_t s = 0; s < after.size(); ++s) {
    if (after[s].rebuilds > 0) {
      ++rebuilt;
      EXPECT_GT(after[s].records, before[s].records);
    } else {
      // Untouched shard: same tree, same records, same counters.
      EXPECT_EQ(after[s].records, before[s].records);
      EXPECT_EQ(after[s].node_accesses, before[s].node_accesses);
      EXPECT_EQ(after[s].fanout_queries, before[s].fanout_queries);
    }
  }
  EXPECT_GE(rebuilt, 1);
  EXPECT_LT(rebuilt, static_cast<int64_t>(after.size()));
}

TEST(ServerIngestTest, ReadOnlyServerRejectsIngest) {
  auto db = workload::GenerateScene(SmallScene(19));
  ASSERT_TRUE(db.ok());
  ObjectDatabase database = std::move(*db);
  const ObjectDatabase* const_db = &database;
  Server server(const_db, Server::Options{});
  EXPECT_FALSE(server.ingest_enabled());
}

AdmissionController::Options AdmissionOptions() {
  AdmissionController::Options options;
  options.enabled = true;
  options.max_client_backlog_bytes = 1000;
  options.max_client_queue_depth = 2;
  options.overload_backlog_bytes = 5000;
  options.shed_backlog_bytes = 10000;
  options.defer_backoff_seconds = 0.5;
  options.max_defers = 3;
  return options;
}

TEST(AdmissionTest, DisabledAdmitsEverything) {
  AdmissionController admission;  // default options: disabled
  AdmissionController::Request request;
  request.bytes = 1 << 30;
  request.client_backlog_bytes = 1 << 30;
  request.client_queue_depth = 1000;
  request.cell_backlog_bytes = 1 << 30;
  request.deferrable = true;
  EXPECT_EQ(admission.Decide(request).decision,
            AdmissionController::Decision::kAdmit);
}

TEST(AdmissionTest, AdmitsWithinBounds) {
  AdmissionController admission(AdmissionOptions());
  AdmissionController::Request request;
  request.bytes = 400;
  request.client_backlog_bytes = 500;
  request.client_queue_depth = 1;
  request.cell_backlog_bytes = 100;
  EXPECT_EQ(admission.Decide(request).decision,
            AdmissionController::Decision::kAdmit);
}

TEST(AdmissionTest, DefersClientOverByteBudget) {
  AdmissionController admission(AdmissionOptions());
  AdmissionController::Request request;
  request.bytes = 600;
  request.client_backlog_bytes = 500;  // 500 + 600 > 1000
  const auto verdict = admission.Decide(request);
  EXPECT_EQ(verdict.decision, AdmissionController::Decision::kDefer);
  EXPECT_DOUBLE_EQ(verdict.retry_after_seconds, 0.5);
  // Unknown size (0) is admitted against the byte bound.
  request.bytes = 0;
  EXPECT_EQ(admission.Decide(request).decision,
            AdmissionController::Decision::kAdmit);
}

TEST(AdmissionTest, DefersClientOverQueueDepth) {
  AdmissionController admission(AdmissionOptions());
  AdmissionController::Request request;
  request.client_queue_depth = 2;
  EXPECT_EQ(admission.Decide(request).decision,
            AdmissionController::Decision::kDefer);
}

TEST(AdmissionTest, BackoffGrowsLinearly) {
  AdmissionController admission(AdmissionOptions());
  AdmissionController::Request request;
  request.client_queue_depth = 2;
  request.prior_defers = 2;
  const auto verdict = admission.Decide(request);
  EXPECT_EQ(verdict.decision, AdmissionController::Decision::kDefer);
  EXPECT_DOUBLE_EQ(verdict.retry_after_seconds, 1.5);  // 0.5 * (1 + 2)
}

TEST(AdmissionTest, OverloadDefersOnlyBulk) {
  AdmissionController admission(AdmissionOptions());
  AdmissionController::Request request;
  request.cell_backlog_bytes = 6000;  // past overload, below shed
  request.deferrable = true;
  EXPECT_EQ(admission.Decide(request).decision,
            AdmissionController::Decision::kDefer);
  // Demand traffic sails through the same backlog.
  request.deferrable = false;
  EXPECT_EQ(admission.Decide(request).decision,
            AdmissionController::Decision::kAdmit);
}

TEST(AdmissionTest, ShedsBulkPastShedWatermark) {
  AdmissionController admission(AdmissionOptions());
  AdmissionController::Request request;
  request.cell_backlog_bytes = 10000;
  request.deferrable = true;
  EXPECT_EQ(admission.Decide(request).decision,
            AdmissionController::Decision::kShed);
  request.deferrable = false;
  EXPECT_EQ(admission.Decide(request).decision,
            AdmissionController::Decision::kAdmit);
}

TEST(AdmissionTest, DeferralIsBounded) {
  AdmissionController admission(AdmissionOptions());
  AdmissionController::Request request;
  request.client_queue_depth = 100;  // would defer forever
  request.prior_defers = 3;          // hit max_defers
  // Non-deferrable demand is forced through; bulk is shed.
  EXPECT_EQ(admission.Decide(request).decision,
            AdmissionController::Decision::kAdmit);
  request.deferrable = true;
  EXPECT_EQ(admission.Decide(request).decision,
            AdmissionController::Decision::kShed);
}

TEST(AdmissionTest, RecordAccumulatesCounters) {
  AdmissionController admission(AdmissionOptions());
  AdmissionController::Request request;
  request.bytes = 100;
  admission.Record(request,
                   {AdmissionController::Decision::kAdmit, 0.0});
  admission.Record(request,
                   {AdmissionController::Decision::kDefer, 0.5});
  admission.Record(request, {AdmissionController::Decision::kShed, 0.0});
  admission.Record(request, {AdmissionController::Decision::kShed, 0.0});
  EXPECT_EQ(admission.admitted_requests(), 1);
  EXPECT_EQ(admission.admitted_bytes(), 100);
  EXPECT_EQ(admission.deferred_requests(), 1);
  EXPECT_EQ(admission.shed_requests(), 2);
  EXPECT_EQ(admission.shed_bytes(), 200);
}

TEST(SessionTableTest, TracksAdmissionEvents) {
  SessionTable table;
  table.GetOrCreate(1)->deferred_requests = 3;
  table.GetOrCreate(2)->shed_requests = 2;
  table.GetOrCreate(3);
  EXPECT_EQ(table.TotalAdmissionEvents(), 5);
}

// ---------------------------------------------------------------------------
// InflightTable (cross-client request coalescing)

InflightTable::Options EnabledInflight() {
  InflightTable::Options options;
  options.enabled = true;
  return options;
}

TEST(InflightTableTest, SingleFlightProbeAndAttach) {
  InflightTable table(EnabledInflight());
  EXPECT_EQ(table.Probe(7), -1);
  EXPECT_EQ(table.Attach(7, 3).outcome,
            InflightTable::AttachOutcome::kNotInflight);

  table.Register(7, /*owner=*/1, /*transfer_seq=*/0, /*bytes=*/112);
  EXPECT_EQ(table.Probe(7), 112);
  EXPECT_EQ(table.entries(), 1);

  const auto attach = table.Attach(7, /*follower=*/3);
  EXPECT_EQ(attach.outcome, InflightTable::AttachOutcome::kAttached);
  EXPECT_EQ(attach.carrier.owner, 1);
  EXPECT_EQ(attach.carrier.transfer_seq, 0);
  EXPECT_EQ(attach.bytes, 112);
  // One entry still: attaching never spawns a second carrier.
  EXPECT_EQ(table.entries(), 1);
  EXPECT_EQ(table.total_registered(), 1);
  EXPECT_EQ(table.total_attached(), 1);
}

TEST(InflightTableTest, WaitersRecordedInAttachOrder) {
  InflightTable table(EnabledInflight());
  table.Register(42, /*owner=*/0, /*transfer_seq=*/5, /*bytes=*/64);
  table.Attach(42, 9);
  table.Attach(42, 2);
  table.Attach(42, 6);
  EXPECT_EQ(table.WaitersOf(42), (std::vector<int32_t>{9, 2, 6}));
}

TEST(InflightTableTest, WaiterCapRefusesWithoutReregistering) {
  InflightTable::Options options = EnabledInflight();
  options.max_waiters_per_entry = 2;
  InflightTable table(options);
  table.Register(1, /*owner=*/0, /*transfer_seq=*/0, /*bytes=*/100);
  EXPECT_EQ(table.Attach(1, 1).outcome,
            InflightTable::AttachOutcome::kAttached);
  EXPECT_EQ(table.Attach(1, 2).outcome,
            InflightTable::AttachOutcome::kAttached);
  const auto refused = table.Attach(1, 3);
  EXPECT_EQ(refused.outcome, InflightTable::AttachOutcome::kRefused);
  // A refused attach still reports the carrier so the caller knows the
  // payload is in flight — it pays full freight but must not register.
  EXPECT_EQ(refused.carrier.owner, 0);
  EXPECT_EQ(table.entries(), 1);
  EXPECT_EQ(table.total_refused(), 1);
  EXPECT_EQ(table.WaitersOf(1), (std::vector<int32_t>{1, 2}));
}

TEST(InflightTableTest, TransferCompleteRemovesOnlyMatchingCarrier) {
  InflightTable table(EnabledInflight());
  table.Register(10, /*owner=*/1, /*transfer_seq=*/0, /*bytes=*/50);
  table.Register(11, /*owner=*/1, /*transfer_seq=*/0, /*bytes=*/60);
  table.Register(12, /*owner=*/1, /*transfer_seq=*/1, /*bytes=*/70);
  table.Register(13, /*owner=*/2, /*transfer_seq=*/0, /*bytes=*/80);
  EXPECT_EQ(table.OnTransferComplete(1, 0), 2);
  EXPECT_EQ(table.Probe(10), -1);
  EXPECT_EQ(table.Probe(11), -1);
  EXPECT_EQ(table.Probe(12), 70);  // same owner, later transfer
  EXPECT_EQ(table.Probe(13), 80);  // other owner
  EXPECT_EQ(table.entries(), 2);
}

TEST(InflightTableTest, CancelStrandsWaitersInRecordOrder) {
  InflightTable table(EnabledInflight());
  table.Register(30, /*owner=*/1, /*transfer_seq=*/0, /*bytes=*/10);
  table.Register(20, /*owner=*/1, /*transfer_seq=*/1, /*bytes=*/10);
  table.Register(25, /*owner=*/2, /*transfer_seq=*/0, /*bytes=*/10);
  table.Attach(30, 5);
  table.Attach(30, 4);
  table.Attach(20, 6);
  table.Attach(25, 7);

  const auto stranded = table.CancelClient(1);
  ASSERT_EQ(stranded.size(), 3u);
  // Ascending record id, attach order within a record.
  EXPECT_EQ(stranded[0].record, 20);
  EXPECT_EQ(stranded[0].waiter, 6);
  EXPECT_EQ(stranded[1].record, 30);
  EXPECT_EQ(stranded[1].waiter, 5);
  EXPECT_EQ(stranded[2].record, 30);
  EXPECT_EQ(stranded[2].waiter, 4);
  EXPECT_EQ(table.total_cancelled(), 2);
  // Client 2's entry survives untouched.
  EXPECT_EQ(table.Probe(25), 10);
  EXPECT_EQ(table.WaitersOf(25), (std::vector<int32_t>{7}));
}

TEST(InflightTableTest, CrossCellAttachRefusedWithoutReregistering) {
  InflightTable table(EnabledInflight());
  table.Register(40, /*owner=*/1, /*transfer_seq=*/0, /*bytes=*/90,
                 /*cell=*/2);
  // Single-copy delivery is a property of sharing one radio transfer: a
  // requester on another cell pays full freight instead of attaching.
  const auto refused = table.Attach(40, /*follower=*/5, /*follower_cell=*/3);
  EXPECT_EQ(refused.outcome, InflightTable::AttachOutcome::kRefused);
  EXPECT_EQ(refused.carrier.cell, 2);
  EXPECT_EQ(refused.bytes, 90);
  EXPECT_EQ(table.total_cross_cell_refused(), 1);
  EXPECT_TRUE(table.WaitersOf(40).empty());
  // The single-flight invariant spans cells: the entry is still live and
  // a same-cell requester still attaches.
  EXPECT_EQ(table.Attach(40, /*follower=*/6, /*follower_cell=*/2).outcome,
            InflightTable::AttachOutcome::kAttached);
  EXPECT_EQ(table.total_cross_cell_refused(), 1);
}

TEST(InflightTableTest, CarrierIdentityIncludesCell) {
  InflightTable table(EnabledInflight());
  // Seqs are per-(cell, client): the same (owner, seq) pair may carry
  // different records on different cells.
  table.Register(50, /*owner=*/1, /*transfer_seq=*/0, /*bytes=*/10,
                 /*cell=*/0);
  table.Register(51, /*owner=*/1, /*transfer_seq=*/0, /*bytes=*/20,
                 /*cell=*/1);
  EXPECT_EQ(table.OnTransferComplete(1, 0, /*cell=*/1), 1);
  EXPECT_EQ(table.Probe(50), 10);  // cell 0's carrier still draining
  EXPECT_EQ(table.Probe(51), -1);
}

TEST(InflightTableTest, CellScopedCancelStrandsOnlyThatCell) {
  InflightTable table(EnabledInflight());
  // Client 1 carries on two cells — it crossed voluntarily and left a
  // transfer draining on cell 0 (anchor forwarding), then registered a
  // new carrier on its new cell 1.
  table.Register(60, /*owner=*/1, /*transfer_seq=*/3, /*bytes=*/100,
                 /*cell=*/0);
  table.Register(61, /*owner=*/1, /*transfer_seq=*/0, /*bytes=*/200,
                 /*cell=*/1);
  table.Attach(60, /*follower=*/7, /*follower_cell=*/0);
  table.Attach(61, /*follower=*/8, /*follower_cell=*/1);

  // Cell 0 dies: only the transfers stranded *there* are cancelled.
  const auto stranded = table.CancelClient(1, /*cell=*/0);
  ASSERT_EQ(stranded.size(), 1u);
  EXPECT_EQ(stranded[0].record, 60);
  EXPECT_EQ(stranded[0].waiter, 7);
  EXPECT_EQ(stranded[0].bytes, 100);
  EXPECT_EQ(stranded[0].carrier.owner, 1);
  EXPECT_EQ(stranded[0].carrier.transfer_seq, 3);
  EXPECT_EQ(stranded[0].carrier.cell, 0);
  // The carrier on the healthy cell keeps draining, waiter attached.
  EXPECT_EQ(table.Probe(61), 200);
  EXPECT_EQ(table.WaitersOf(61), (std::vector<int32_t>{8}));
  EXPECT_EQ(table.entries(), 1);

  // Cell-agnostic cancel still sweeps everything the client owns.
  const auto rest = table.CancelClient(1);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].record, 61);
  EXPECT_EQ(table.entries(), 0);
}

TEST(InflightTableTest, DisabledTableIsInert) {
  InflightTable table;  // default options: disabled
  EXPECT_FALSE(table.enabled());
  table.Register(1, 0, 0, 100);  // dropped, not a check failure
  EXPECT_EQ(table.Probe(1), -1);
  EXPECT_EQ(table.Attach(1, 2).outcome,
            InflightTable::AttachOutcome::kNotInflight);
  EXPECT_EQ(table.entries(), 0);
  EXPECT_EQ(table.OnTransferComplete(0, 0), 0);
  EXPECT_TRUE(table.CancelClient(0).empty());
}

TEST(HotRecordCacheTest, PerShardStatsCountHitsAndMisses) {
  HotRecordCache cache(/*budget_bytes=*/1 << 20, /*shards=*/4);
  ASSERT_TRUE(cache.enabled());
  cache.Insert(1, {uint8_t{1}, uint8_t{2}});
  EXPECT_EQ(cache.Lookup(1), 2);   // hit
  EXPECT_EQ(cache.Lookup(1), 2);   // hit
  EXPECT_EQ(cache.Lookup(9), -1);  // miss

  int64_t hits = 0;
  int64_t misses = 0;
  int64_t entries = 0;
  for (const auto& s : cache.Stats()) {
    hits += s.hits;
    misses += s.misses;
    entries += s.entries;
  }
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(misses, 1);
  EXPECT_EQ(entries, 1);
}

// --- Load-adaptive shard rebalancer (--rebalance on) -----------------------

// A per_side × per_side grid of point-supported records over [0, 1000]²,
// so a K = 4 base grid gets an equal record count in every cell.
std::vector<index::CoeffRecord> GridRecords(int per_side) {
  std::vector<index::CoeffRecord> records;
  for (int i = 0; i < per_side; ++i) {
    for (int j = 0; j < per_side; ++j) {
      index::CoeffRecord r;
      r.w = 0.5;
      const double x = 1000.0 * (i + 0.5) / per_side;
      const double y = 1000.0 * (j + 0.5) / per_side;
      r.position = {x, y, 0};
      r.support_bounds = geometry::MakeBox3(x - 2, y - 2, 0, x + 2, y + 2, 5);
      records.push_back(r);
    }
  }
  return records;
}

void QueryRegion(const index::ShardedCoefficientIndex& index,
                 const geometry::Box2& region, int times) {
  std::vector<index::RecordId> out;
  for (int q = 0; q < times; ++q) {
    out.clear();
    index.Query(region, 0.0, 1.0, &out);
  }
}

TEST(RebalancerTest, IntervalGatesRounds) {
  index::ShardedIndexOptions options;
  options.shards = 4;
  index::ShardedCoefficientIndex index(options);
  index.Build(GridRecords(32));

  RebalanceOptions policy;
  policy.interval = 4;
  ShardRebalancer rebalancer(&index, policy);
  for (int t = 0; t < 3; ++t) {
    EXPECT_TRUE(rebalancer.Tick().empty());
    EXPECT_EQ(rebalancer.rounds(), 0);
  }
  rebalancer.Tick();
  EXPECT_EQ(rebalancer.rounds(), 1);
}

TEST(RebalancerTest, SplitsTheHotShard) {
  index::ShardedIndexOptions options;
  options.shards = 4;
  index::ShardedCoefficientIndex index(options);
  index.Build(GridRecords(32));  // 256 records per shard

  RebalanceOptions policy;
  policy.interval = 1;
  policy.split_factor = 2.0;
  policy.merge_factor = 0.0;  // merges off: shares never drop below zero
  policy.min_split_records = 64;
  ShardRebalancer rebalancer(&index, policy);

  // Round 1 only installs the baseline — no shard has a window yet.
  EXPECT_TRUE(rebalancer.Tick().empty());

  // All load on the low-left cell: its share is ~1.0 of 4 live shards.
  QueryRegion(index, geometry::MakeBox2(100, 100, 400, 400), 50);
  const auto events = rebalancer.Tick();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, RebalanceEvent::Kind::kSplit);
  EXPECT_EQ(events[0].shard, 0);
  EXPECT_EQ(events[0].target, 4);
  EXPECT_GT(events[0].share, 0.9);
  EXPECT_EQ(index.live_shard_count(), 5);
  EXPECT_EQ(rebalancer.events().size(), 1u);
}

TEST(RebalancerTest, MergesTheColdSmallShard) {
  index::ShardedIndexOptions options;
  options.shards = 4;
  index::ShardedCoefficientIndex index(options);
  index.Build(GridRecords(8));  // 16 records per shard: all mergeable

  RebalanceOptions policy;
  policy.interval = 1;
  policy.split_factor = 100.0;  // splits off
  policy.merge_factor = 0.5;
  policy.min_split_records = 64;
  ShardRebalancer rebalancer(&index, policy);
  EXPECT_TRUE(rebalancer.Tick().empty());  // baseline round

  // Load on three cells; the upper-right shard stays stone cold.
  QueryRegion(index, geometry::MakeBox2(100, 100, 400, 400), 20);
  QueryRegion(index, geometry::MakeBox2(600, 100, 900, 400), 20);
  QueryRegion(index, geometry::MakeBox2(100, 600, 400, 900), 20);
  const auto events = rebalancer.Tick();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, RebalanceEvent::Kind::kMerge);
  EXPECT_EQ(events[0].shard, 3);
  EXPECT_EQ(events[0].share, 0.0);
  EXPECT_EQ(index.live_shard_count(), 3);
  EXPECT_TRUE(index.Stats()[3].retired);
}

TEST(RebalancerTest, LargeColdShardIsNotAMergeSource) {
  index::ShardedIndexOptions options;
  options.shards = 4;
  index::ShardedCoefficientIndex index(options);
  index.Build(GridRecords(32));  // 256 records per shard: none mergeable

  RebalanceOptions policy;
  policy.interval = 1;
  policy.split_factor = 100.0;
  policy.merge_factor = 0.5;
  policy.min_split_records = 64;
  ShardRebalancer rebalancer(&index, policy);
  EXPECT_TRUE(rebalancer.Tick().empty());

  QueryRegion(index, geometry::MakeBox2(100, 100, 400, 400), 20);
  // The idle shards hold 256 ≥ min_split_records records each: merging
  // them would bloat the destination for no access-share gain.
  EXPECT_TRUE(rebalancer.Tick().empty());
  EXPECT_EQ(index.live_shard_count(), 4);
}

TEST(RebalancerTest, MaxShardsCapsGrowth) {
  index::ShardedIndexOptions options;
  options.shards = 4;
  index::ShardedCoefficientIndex index(options);
  index.Build(GridRecords(32));

  RebalanceOptions policy;
  policy.interval = 1;
  policy.split_factor = 1.5;
  policy.merge_factor = 0.0;
  policy.min_split_records = 2;
  policy.max_shards = 6;
  ShardRebalancer rebalancer(&index, policy);

  for (int round = 0; round < 12; ++round) {
    QueryRegion(index, geometry::MakeBox2(100, 100, 400, 400), 20);
    rebalancer.Tick();
  }
  // The total-slot governor: growth stops at max_shards even though the
  // hot cell keeps qualifying.
  EXPECT_LE(index.shard_count(), 6);
  EXPECT_EQ(index.shard_count(), 6);
  EXPECT_GE(rebalancer.events().size(), 2u);
}

TEST(ServerRebalanceTest, DisabledByDefaultAndInertWhenOff) {
  auto db = workload::GenerateScene(SmallScene(17));
  ASSERT_TRUE(db.ok());
  ObjectDatabase database = std::move(*db);
  Server::Options options;
  options.shards = 4;
  Server server(&database, options);
  EXPECT_FALSE(server.rebalance_enabled());
  EXPECT_TRUE(server.TickRebalancer().empty());  // null rebalancer: no-op
  EXPECT_TRUE(server.RebalanceEvents().empty());
  EXPECT_EQ(server.rebalance_ops(), 0);
  EXPECT_EQ(server.live_shard_count(), 4);
}

TEST(ServerRebalanceTest, EnabledServerRunsThePolicy) {
  auto db = workload::GenerateScene(SmallScene(17));
  ASSERT_TRUE(db.ok());
  ObjectDatabase database = std::move(*db);
  Server::Options options;
  options.shards = 4;
  options.rebalance.enabled = true;
  options.rebalance.interval = 1;
  options.rebalance.min_split_records = 2;
  Server server(&database, options);
  ASSERT_TRUE(server.rebalance_enabled());

  server.TickRebalancer();  // baseline round
  ClientSession session;
  const geometry::Box2 window = geometry::MakeBox2(0, 0, 500, 500);
  for (int q = 0; q < 30; ++q) {
    server.Execute({SubQuery{window, 0.0, 1.0}}, &session);
  }
  for (int t = 0; t < 4; ++t) server.TickRebalancer();
  EXPECT_GE(server.rebalance_ops(), 1);
  EXPECT_EQ(static_cast<int64_t>(server.RebalanceEvents().size()),
            server.rebalance_ops());
}

}  // namespace
}  // namespace mars::server
