// Robustness of the two deserialization surfaces — the wire codec
// (DecodeRecords) and the persistence format (DeserializeDatabase) —
// against corrupted input: truncation at every prefix length, sampled
// single-bit flips, and adversarially inflated length fields. The
// invariant everywhere: a non-OK Status (or, for bit flips that happen to
// keep the stream well-formed, a successful parse) — never a crash, hang,
// or attempt at a huge allocation.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "server/object_db.h"
#include "server/persistence.h"
#include "server/server.h"
#include "server/wire_codec.h"
#include "workload/scene.h"

namespace mars::server {
namespace {

workload::SceneOptions SmallScene() {
  workload::SceneOptions options;
  options.space = geometry::MakeBox2(0, 0, 1000, 1000);
  options.object_count = 6;
  options.levels = 2;
  options.seed = 19;
  return options;
}

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = workload::GenerateScene(SmallScene());
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<ObjectDatabase>(std::move(*db));

    // A realistic encoded response: every record of object 0 and 1.
    std::vector<index::RecordId> ids;
    for (size_t i = 0; i < db_->records().size(); ++i) {
      if (db_->records()[i].object_id <= 1) {
        ids.push_back(static_cast<index::RecordId>(i));
      }
    }
    wire_ = EncodeRecords(*db_, ids);
    ASSERT_FALSE(wire_.empty());
    persisted_ = SerializeDatabase(*db_);
    ASSERT_FALSE(persisted_.empty());
  }

  std::unique_ptr<ObjectDatabase> db_;
  std::vector<uint8_t> wire_;
  std::vector<uint8_t> persisted_;
};

// --- Truncation ---------------------------------------------------------

TEST_F(CorruptionTest, WireDecodeRejectsEveryTruncation) {
  // Every strict prefix must fail cleanly (the codec has no trailing
  // padding: any cut removes needed bytes).
  for (size_t len = 0; len < wire_.size(); ++len) {
    const std::vector<uint8_t> prefix(wire_.begin(), wire_.begin() + len);
    const auto decoded = DecodeRecords(prefix);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes parsed";
  }
  EXPECT_TRUE(DecodeRecords(wire_).ok());
}

TEST_F(CorruptionTest, PersistenceRejectsTruncation) {
  // Stride through prefixes (the blob is tens of KB; every single length
  // would be slow to no benefit).
  for (size_t len = 0; len < persisted_.size();
       len += 1 + persisted_.size() / 257) {
    const std::vector<uint8_t> prefix(persisted_.begin(),
                                      persisted_.begin() + len);
    const auto parsed = DeserializeDatabase(prefix);
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
  }
  EXPECT_TRUE(DeserializeDatabase(persisted_).ok());
}

// --- Bit flips ----------------------------------------------------------

TEST_F(CorruptionTest, WireDecodeSurvivesBitFlips) {
  // A flipped bit may still decode (payload bits carry no structure);
  // the requirement is no crash and no unbounded work.
  for (size_t pos = 0; pos < wire_.size(); pos += 3) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::vector<uint8_t> copy = wire_;
      copy[pos] ^= static_cast<uint8_t>(1u << bit);
      const auto decoded = DecodeRecords(copy);
      if (decoded.ok()) {
        // Sanity-bounded output: no more records than input bytes.
        EXPECT_LE(decoded->size(), copy.size());
      }
    }
  }
}

TEST_F(CorruptionTest, PersistenceSurvivesBitFlips) {
  for (size_t pos = 0; pos < persisted_.size();
       pos += 1 + persisted_.size() / 127) {
    std::vector<uint8_t> copy = persisted_;
    copy[pos] ^= 0x10;
    const auto parsed = DeserializeDatabase(copy);
    if (parsed.ok()) {
      EXPECT_TRUE(parsed->finalized());
    }
  }
}

TEST_F(CorruptionTest, PersistenceRejectsBadMagicAndVersion) {
  {
    std::vector<uint8_t> copy = persisted_;
    copy[0] ^= 0xFF;
    EXPECT_FALSE(DeserializeDatabase(copy).ok());
  }
  {
    // The version follows the magic; a future version must be refused,
    // not misparsed.
    std::vector<uint8_t> copy = persisted_;
    for (size_t i = 4; i < 8 && i < copy.size(); ++i) copy[i] = 0xFF;
    EXPECT_FALSE(DeserializeDatabase(copy).ok());
  }
}

// --- Length-field inflation ---------------------------------------------

// Crafts a buffer that claims a huge element count up front. The parsers
// must fail fast on count-vs-remaining-bytes checks instead of trying to
// reserve gigabytes or looping for minutes.
TEST(CorruptionCraftedTest, WireDecodeRejectsInflatedCounts) {
  common::ByteWriter w;
  w.WriteVarU64(0x7FFFFFFFu);  // object-group count: ~2 billion
  const auto decoded = DecodeRecords(w.buffer());
  EXPECT_FALSE(decoded.ok());
}

TEST(CorruptionCraftedTest, WireDecodeRejectsInflatedInnerCounts) {
  common::ByteWriter w;
  w.WriteVarU64(1);   // one object group
  w.WriteVarU64(3);   // object id
  w.WriteFloat(1.0f);  // detail scale
  for (int i = 0; i < 6; ++i) w.WriteFloat(0.0f);  // bounds
  w.WriteVarU64(0xFFFFFFFFu);  // record count within the group
  const auto decoded = DecodeRecords(w.buffer());
  EXPECT_FALSE(decoded.ok());
}

TEST(CorruptionCraftedTest, PersistenceRejectsInflatedObjectCount) {
  auto db = workload::GenerateScene(SmallScene());
  ASSERT_TRUE(db.ok());
  std::vector<uint8_t> bytes = SerializeDatabase(*db);
  // Replay the header (magic + version), then splice in a huge object
  // count and reuse the original tail so the stream stays long enough to
  // look plausible.
  common::ByteReader r(bytes);
  uint32_t magic = 0, version = 0;
  ASSERT_TRUE(r.ReadU32(&magic).ok());
  ASSERT_TRUE(r.ReadU32(&version).ok());
  common::ByteWriter w;
  w.WriteU32(magic);
  w.WriteU32(version);
  w.WriteVarU64(0x3FFFFFFFu);  // one billion objects
  std::vector<uint8_t> crafted = w.buffer();
  crafted.insert(crafted.end(), bytes.begin() + 9, bytes.end());
  const auto parsed = DeserializeDatabase(crafted);
  EXPECT_FALSE(parsed.ok());
}

TEST(CorruptionCraftedTest, EmptyAndTinyInputsFailCleanly) {
  EXPECT_FALSE(DeserializeDatabase({}).ok());
  EXPECT_FALSE(DeserializeDatabase({0x00}).ok());
  EXPECT_FALSE(DeserializeDatabase({0xFF, 0xFF, 0xFF}).ok());
  EXPECT_FALSE(DecodeRecords({0xFF}).ok());
  // An empty wire response is at worst a clean parse error, never more.
  const auto empty = DecodeRecords({});
  if (empty.ok()) {
    EXPECT_TRUE(empty->empty());
  }
}

}  // namespace
}  // namespace mars::server
