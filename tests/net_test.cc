#include <gtest/gtest.h>

#include <vector>

#include "net/link.h"
#include "net/shared_link.h"
#include "net/sim_clock.h"
#include "net/wfq.h"

namespace mars::net {
namespace {

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.Advance(1.5);
  clock.Advance(0.25);
  EXPECT_DOUBLE_EQ(clock.now(), 1.75);
}

TEST(LinkTest, DefaultsMatchPaperSetup) {
  SimulatedLink link;
  EXPECT_DOUBLE_EQ(link.options().bandwidth_kbps, 256.0);
  EXPECT_DOUBLE_EQ(link.options().latency_seconds, 0.2);
}

TEST(LinkTest, StationaryBandwidth) {
  SimulatedLink link;
  // 256 Kbps = 32000 bytes/s.
  EXPECT_DOUBLE_EQ(link.UsableBandwidth(0.0), 32000.0);
}

TEST(LinkTest, MovingClientLosesBandwidth) {
  SimulatedLink link;  // degradation 0.5
  EXPECT_DOUBLE_EQ(link.UsableBandwidth(1.0), 16000.0);
  EXPECT_DOUBLE_EQ(link.UsableBandwidth(0.5), 24000.0);
  // Monotone in speed.
  double prev = link.UsableBandwidth(0.0);
  for (double s : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double bw = link.UsableBandwidth(s);
    EXPECT_LT(bw, prev);
    prev = bw;
  }
}

TEST(LinkTest, SpeedClampedToUnitRange) {
  SimulatedLink link;
  EXPECT_DOUBLE_EQ(link.UsableBandwidth(-3.0), link.UsableBandwidth(0.0));
  EXPECT_DOUBLE_EQ(link.UsableBandwidth(9.0), link.UsableBandwidth(1.0));
}

TEST(LinkTest, ExchangeArithmetic) {
  SimulatedLink link;
  // 32000 bytes at rest: 0.2 s latency + 1 s transfer.
  EXPECT_NEAR(link.ExchangeSeconds(0, 32000, 0.0), 1.2, 1e-12);
  // Request bytes count too.
  EXPECT_NEAR(link.ExchangeSeconds(16000, 16000, 0.0), 1.2, 1e-12);
  // Zero payload still pays latency.
  EXPECT_NEAR(link.ExchangeSeconds(0, 0, 0.0), 0.2, 1e-12);
}

TEST(LinkTest, MotionMakesTransfersSlower) {
  SimulatedLink link;
  EXPECT_GT(link.ExchangeSeconds(0, 64000, 1.0),
            link.ExchangeSeconds(0, 64000, 0.0));
}

TEST(LinkTest, CountersAccumulate) {
  SimulatedLink link;
  link.Exchange(100, 1000, 0.2);
  link.Exchange(50, 2000, 0.8);
  EXPECT_EQ(link.total_requests(), 2);
  EXPECT_EQ(link.total_bytes_up(), 150);
  EXPECT_EQ(link.total_bytes_down(), 3000);
  EXPECT_GT(link.total_seconds(), 0.4);  // at least 2 latencies
  link.ResetStats();
  EXPECT_EQ(link.total_requests(), 0);
  EXPECT_EQ(link.total_bytes_down(), 0);
  EXPECT_DOUBLE_EQ(link.total_seconds(), 0.0);
}

TEST(LinkTest, CustomOptions) {
  SimulatedLink::Options options;
  options.bandwidth_kbps = 1000.0;
  options.latency_seconds = 0.05;
  options.motion_degradation = 0.0;
  SimulatedLink link(options);
  EXPECT_DOUBLE_EQ(link.UsableBandwidth(1.0), 125000.0);
  EXPECT_NEAR(link.ExchangeSeconds(0, 125000, 1.0), 1.05, 1e-12);
}

// --- Loss injection -------------------------------------------------------

TEST(LinkLossTest, ZeroLossIsDeterministicBaseline) {
  SimulatedLink link;
  const double t = link.Exchange(0, 32000, 0.0);
  EXPECT_NEAR(t, 1.2, 1e-12);
  EXPECT_EQ(link.total_retries(), 0);
}

TEST(LinkLossTest, LossInflatesMeanTime) {
  SimulatedLink::Options lossy;
  lossy.loss_probability = 0.2;
  lossy.loss_seed = 5;
  SimulatedLink link(lossy);
  double total = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    total += link.Exchange(0, 32000, 0.0);
  }
  const double mean = total / n;
  EXPECT_GT(mean, 1.2);           // strictly worse than lossless
  EXPECT_LT(mean, 1.2 * 2.0);     // but bounded (p = 0.2)
  EXPECT_GT(link.total_retries(), 0);
}

TEST(LinkLossTest, FasterClientsLoseMore) {
  SimulatedLink::Options lossy;
  lossy.loss_probability = 0.2;
  SimulatedLink slow(lossy), fast(lossy);
  for (int i = 0; i < 3000; ++i) {
    slow.Exchange(0, 1000, 0.0);
    fast.Exchange(0, 1000, 1.0);
  }
  EXPECT_GT(fast.total_retries(), slow.total_retries());
}

TEST(LinkLossTest, DeterministicForSeed) {
  SimulatedLink::Options lossy;
  lossy.loss_probability = 0.3;
  lossy.loss_seed = 9;
  SimulatedLink a(lossy), b(lossy);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Exchange(10, 5000, 0.4), b.Exchange(10, 5000, 0.4));
  }
}

// --- SharedMediumLink ---------------------------------------------------

TEST(SharedLinkTest, SingleTransferMatchesDedicatedLink) {
  SharedMediumLink cell;  // bearer 256 Kbps = 32 KB/s
  cell.Submit(0, 32000, 0.0);
  const auto done = cell.DrainAll();
  ASSERT_EQ(done.size(), 1u);
  // 1 s transfer + 0.2 s latency.
  EXPECT_NEAR(done[0].response_seconds, 1.2, 1e-6);
}

TEST(SharedLinkTest, BearerCapsBelowCellShare) {
  // Two clients on a 2 Mbps cell: each could get 1 Mbps, but the 256 Kbps
  // bearer caps them; no mutual slowdown.
  SharedMediumLink cell;
  cell.Submit(0, 32000, 0.0);
  cell.Submit(1, 32000, 0.0);
  const auto done = cell.DrainAll();
  ASSERT_EQ(done.size(), 2u);
  for (const auto& c : done) {
    EXPECT_NEAR(c.response_seconds, 1.2, 1e-6);
  }
}

TEST(SharedLinkTest, ContentionSlowsEveryone) {
  // 16 clients on a 2 Mbps cell: each gets 128 Kbps < bearer.
  SharedMediumLink cell;
  for (int c = 0; c < 16; ++c) cell.Submit(c, 16000, 0.0);
  const auto done = cell.DrainAll();
  ASSERT_EQ(done.size(), 16u);
  // 16000 bytes at 16 KB/s = 1 s + latency.
  for (const auto& c : done) {
    EXPECT_NEAR(c.response_seconds, 1.2, 1e-6);
  }
}

TEST(SharedLinkTest, EarlyFinisherFreesCapacity) {
  SharedMediumLink::Options options;
  options.cell_bandwidth_kbps = 512.0;  // 64 KB/s cell
  options.client_bandwidth_kbps = 512.0;
  options.latency_seconds = 0.0;
  options.motion_degradation = 0.0;
  SharedMediumLink cell(options);
  cell.Submit(0, 32000, 0.0);  // short
  cell.Submit(1, 64000, 0.0);  // long
  const auto done = cell.DrainAll();
  ASSERT_EQ(done.size(), 2u);
  // Shared at 32 KB/s each: client 0 done at t=1. Client 1 then has
  // 32000 left at full 64 KB/s: done at t=1.5.
  EXPECT_NEAR(done[0].response_seconds, 1.0, 1e-6);
  EXPECT_NEAR(done[1].response_seconds, 1.5, 1e-6);
}

TEST(SharedLinkTest, AdvanceIsIncremental) {
  SharedMediumLink cell;
  cell.Submit(0, 64000, 0.0);  // 2 s at bearer rate
  EXPECT_TRUE(cell.Advance(1.0).empty());
  EXPECT_EQ(cell.in_flight(), 1u);
  const auto done = cell.Advance(2.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(cell.in_flight(), 0u);
  EXPECT_NEAR(cell.now(), 3.0, 1e-9);
}

TEST(SharedLinkTest, QueueingDelaysLateComers) {
  // A saturated cell: submissions pile up and later ones wait longer.
  SharedMediumLink::Options options;
  options.cell_bandwidth_kbps = 256.0;
  options.client_bandwidth_kbps = 256.0;
  options.latency_seconds = 0.0;
  options.motion_degradation = 0.0;
  SharedMediumLink cell(options);
  cell.Submit(0, 32000, 0.0);
  cell.Submit(1, 32000, 0.0);
  cell.Submit(2, 32000, 0.0);
  const auto done = cell.DrainAll();
  ASSERT_EQ(done.size(), 3u);
  // Processor sharing: all three finish together at 3 s.
  for (const auto& c : done) {
    EXPECT_NEAR(c.response_seconds, 3.0, 1e-6);
  }
}

TEST(SharedLinkTest, MotionDegradesIndividually) {
  SharedMediumLink cell;  // degradation 0.5
  cell.Submit(0, 16000, 0.0);
  cell.Submit(1, 16000, 1.0);  // moving at full speed: half the rate
  const auto done = cell.DrainAll();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_LT(done[0].response_seconds, done[1].response_seconds);
}

TEST(WfqClockTest, StampsFollowFifoWithinClient) {
  WfqVirtualClock clock;
  clock.Activate(0);
  // First transfer starts at V=0; the second queues behind it.
  EXPECT_DOUBLE_EQ(clock.Stamp(0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(clock.Stamp(0, 50.0), 150.0);
  // Once V overtakes the tail, the next stamp starts from V.
  clock.OnServed(300.0);  // W = 1, so dV = 300
  EXPECT_DOUBLE_EQ(clock.virtual_time(), 300.0);
  EXPECT_DOUBLE_EQ(clock.Stamp(0, 10.0), 310.0);
}

TEST(WfqClockTest, WeightScalesFinishTags) {
  WfqVirtualClock clock;
  clock.SetWeight(1, 2.0);
  clock.Activate(0);
  clock.Activate(1);
  EXPECT_DOUBLE_EQ(clock.total_active_weight(), 3.0);
  // Equal bytes: the double-weight client's finish tag is half as far.
  EXPECT_DOUBLE_EQ(clock.Stamp(0, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(clock.Stamp(1, 100.0), 50.0);
  // Virtual time advances at served / W.
  clock.OnServed(30.0);
  EXPECT_DOUBLE_EQ(clock.virtual_time(), 10.0);
}

TEST(WfqClockTest, ActivationIsIdempotent) {
  WfqVirtualClock clock;
  clock.Activate(3);
  clock.Activate(3);
  EXPECT_DOUBLE_EQ(clock.total_active_weight(), 1.0);
  clock.Deactivate(3);
  clock.Deactivate(3);
  EXPECT_DOUBLE_EQ(clock.total_active_weight(), 0.0);
  clock.Deactivate(99);  // never seen: no-op
  EXPECT_DOUBLE_EQ(clock.total_active_weight(), 0.0);
  // Re-weighting an active client adjusts the active sum in place.
  clock.Activate(3);
  clock.SetWeight(3, 4.0);
  EXPECT_DOUBLE_EQ(clock.total_active_weight(), 4.0);
}

TEST(SharedLinkWfqTest, WeightsSplitBandwidthTwoToOne) {
  SharedMediumLink::Options options;
  options.cell_bandwidth_kbps = 256.0;    // 32 KB/s
  options.client_bandwidth_kbps = 256.0;  // bearer never binds
  options.latency_seconds = 0.0;
  options.motion_degradation = 0.0;
  SharedMediumLink cell(options);
  cell.SetClientWeight(0, 2.0);
  cell.SetClientWeight(1, 1.0);
  cell.Submit(0, 64000, 0.0);
  cell.Submit(1, 64000, 0.0);
  const auto done = cell.DrainAll();
  ASSERT_EQ(done.size(), 2u);
  // While both are backlogged, client 0 drains at 2/3 cell and client 1
  // at 1/3: client 0 finishes at t = 64000 / (32000*2/3) = 3 s; client 1
  // then holds the whole cell for its remaining 32000 bytes: t = 4 s.
  EXPECT_EQ(done[0].client, 0);
  EXPECT_NEAR(done[0].response_seconds, 3.0, 1e-6);
  EXPECT_EQ(done[1].client, 1);
  EXPECT_NEAR(done[1].response_seconds, 4.0, 1e-6);
}

TEST(SharedLinkWfqTest, PerClientQueueIsFifo) {
  SharedMediumLink::Options options;
  options.cell_bandwidth_kbps = 2048.0;
  options.client_bandwidth_kbps = 256.0;  // 32 KB/s bearer
  options.latency_seconds = 0.0;
  options.motion_degradation = 0.0;
  SharedMediumLink cell(options);
  // One client, two concurrent transfers: WFQ serves the head only, at
  // the bearer rate — the second waits its turn.
  cell.Submit(0, 32000, 0.0);
  cell.Submit(0, 32000, 0.0);
  const auto done = cell.DrainAll();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0].response_seconds, 1.0, 1e-6);
  EXPECT_NEAR(done[1].response_seconds, 2.0, 1e-6);
}

TEST(SharedLinkWfqTest, GreedyBacklogCannotStarveOthers) {
  SharedMediumLink::Options options;
  options.cell_bandwidth_kbps = 512.0;    // 64 KB/s
  options.client_bandwidth_kbps = 512.0;  // bearer never binds
  options.latency_seconds = 0.0;
  options.motion_degradation = 0.0;
  SharedMediumLink cell(options);
  // Greedy client 0 stacks ten 64000-byte transfers. Client 1 submits
  // one small exchange a second later and still receives its full half
  // of the cell: 32000 bytes at 32 KB/s = 1 s delivery. (Equal-share
  // would give it 1/11 of the cell — about 5.5 s.)
  for (int i = 0; i < 10; ++i) cell.Submit(0, 64000, 0.0);
  const auto early = cell.Advance(1.0);
  ASSERT_EQ(early.size(), 1u);  // greedy's head drained alone
  cell.Submit(1, 32000, 0.0);
  const auto done = cell.DrainAll();
  double client1_response = -1.0;
  for (const auto& c : done) {
    if (c.client == 1) client1_response = c.response_seconds;
  }
  EXPECT_NEAR(client1_response, 1.0, 1e-6);
}

TEST(SharedLinkWfqTest, BacklogObservability) {
  SharedMediumLink::Options options;
  options.latency_seconds = 0.0;
  options.motion_degradation = 0.0;
  SharedMediumLink cell(options);
  cell.Submit(0, 32000, 0.0);
  cell.Submit(0, 16000, 0.0);
  cell.Submit(1, 8000, 0.0);
  EXPECT_EQ(cell.client_backlog_bytes(0), 48000);
  EXPECT_EQ(cell.client_queue_depth(0), 2);
  EXPECT_EQ(cell.client_backlog_bytes(1), 8000);
  EXPECT_EQ(cell.client_queue_depth(1), 1);
  EXPECT_EQ(cell.client_backlog_bytes(7), 0);  // unknown client
  EXPECT_EQ(cell.backlog_bytes(), 56000);
  cell.DrainAll();
  EXPECT_EQ(cell.backlog_bytes(), 0);
}

TEST(SharedLinkWfqTest, DeterministicAcrossRuns) {
  const auto run = [] {
    SharedMediumLink::Options options;
    options.loss_probability = 0.1;
    options.loss_seed = 42;
    SharedMediumLink cell(options);
    cell.SetClientWeight(1, 3.0);
    std::vector<double> out;
    for (int i = 0; i < 20; ++i) {
      cell.Submit(i % 4, 8000 + 1000 * i, 0.1 * (i % 10));
      for (const auto& c : cell.Advance(0.3)) {
        out.push_back(c.response_seconds + c.client);
      }
    }
    for (const auto& c : cell.DrainAll()) {
      out.push_back(c.response_seconds + c.client);
    }
    return out;
  };
  // Bitwise-identical completion sequence, including under loss.
  EXPECT_EQ(run(), run());
}

TEST(SharedLinkEqualShareTest, AggregateBearerCapAcrossTransfers) {
  SharedMediumLink::Options options;
  options.discipline = SharedMediumLink::Discipline::kEqualShare;
  options.cell_bandwidth_kbps = 2048.0;
  options.client_bandwidth_kbps = 256.0;  // 32 KB/s bearer
  options.latency_seconds = 0.0;
  options.motion_degradation = 0.0;
  SharedMediumLink cell(options);
  // Regression: one client with two concurrent 32000-byte transfers may
  // carry 32 KB/s in aggregate — both drain at t = 2.0 s. The old model
  // capped per *transfer*, so the mid-flight join over-credited the
  // client to 64 KB/s and both finished at 1.0 s.
  cell.Submit(0, 32000, 0.0);
  cell.Submit(0, 32000, 0.0);
  const auto done = cell.DrainAll();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0].response_seconds, 2.0, 1e-6);
  EXPECT_NEAR(done[1].response_seconds, 2.0, 1e-6);
}

TEST(SharedLinkEqualShareTest, GreedyClientDrownsNeighbour) {
  // The motivation for WFQ, pinned as a test: under equal share a greedy
  // backlog multiplies its cell share and the polite client waits.
  SharedMediumLink::Options options;
  options.discipline = SharedMediumLink::Discipline::kEqualShare;
  options.cell_bandwidth_kbps = 512.0;    // 64 KB/s
  options.client_bandwidth_kbps = 512.0;  // bearer never binds
  options.latency_seconds = 0.0;
  options.motion_degradation = 0.0;
  SharedMediumLink cell(options);
  for (int i = 0; i < 7; ++i) cell.Submit(0, 64000, 0.0);
  cell.Submit(1, 32000, 0.0);
  const auto done = cell.DrainAll();
  double client1_response = -1.0;
  for (const auto& c : done) {
    if (c.client == 1) client1_response = c.response_seconds;
  }
  // Client 1 holds 1/8 of the cell (8 KB/s) while the greedy transfers
  // drain — strictly worse than its WFQ half-share.
  EXPECT_GT(client1_response, 3.0);
}

// --- CancelClient / finish_seconds (handover support) -------------------

TEST(SharedLinkCancelTest, FinishSecondsIsSubmittedPlusResponse) {
  SharedMediumLink cell;
  cell.Advance(1.0);  // non-zero submission time
  cell.Submit(0, 32000, 0.0);
  cell.Advance(0.5);
  cell.Submit(0, 16000, 0.0);
  const auto done = cell.DrainAll();
  ASSERT_EQ(done.size(), 2u);
  // Bitwise, not approximately: callers tracking absolute finish times
  // must agree with callers summing submit + response.
  EXPECT_EQ(done[0].finish_seconds, 1.0 + done[0].response_seconds);
  EXPECT_EQ(done[1].finish_seconds, 1.5 + done[1].response_seconds);
}

TEST(SharedLinkCancelTest, CancelReturnsQueueInSubmissionOrder) {
  SharedMediumLink::Options options;
  options.cell_bandwidth_kbps = 256.0;
  options.client_bandwidth_kbps = 256.0;
  options.latency_seconds = 0.0;
  options.motion_degradation = 0.0;
  SharedMediumLink cell(options);
  cell.Submit(0, 32000, 0.0);
  cell.Submit(1, 32000, 0.0);
  cell.Advance(0.5);  // partially drain
  cell.Submit(0, 16000, 0.25);

  const auto cancelled = cell.CancelClient(0);
  ASSERT_EQ(cancelled.size(), 2u);
  EXPECT_EQ(cancelled[0].seq, 0);
  EXPECT_DOUBLE_EQ(cancelled[0].submitted_at, 0.0);
  // Half a second of a shared 32 KB/s cell: 8000 bytes moved.
  EXPECT_NEAR(cancelled[0].remaining_bytes, 24000.0, 1.0);
  EXPECT_EQ(cancelled[1].seq, 1);
  EXPECT_DOUBLE_EQ(cancelled[1].submitted_at, 0.5);
  EXPECT_DOUBLE_EQ(cancelled[1].remaining_bytes, 16000.0);
  EXPECT_DOUBLE_EQ(cancelled[1].speed, 0.25);
  EXPECT_EQ(cell.client_queue_depth(0), 0);
  EXPECT_EQ(cell.client_backlog_bytes(0), 0);

  // The survivor drains alone and cancellation is not a completion.
  const auto done = cell.DrainAll();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].client, 1);
}

TEST(SharedLinkCancelTest, SequenceNumbersSurviveCancellation) {
  SharedMediumLink cell;
  EXPECT_EQ(cell.Submit(0, 1000, 0.0), 0);
  EXPECT_EQ(cell.Submit(0, 1000, 0.0), 1);
  cell.CancelClient(0);
  // A later submission must not reuse a cancelled transfer's seq — the
  // coalescing table keys shared payloads by (client, seq).
  EXPECT_EQ(cell.Submit(0, 1000, 0.0), 2);
  const auto done = cell.DrainAll();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].seq, 2);
}

TEST(SharedLinkCancelTest, CancelUnknownClientIsEmpty) {
  SharedMediumLink cell;
  cell.Submit(0, 1000, 0.0);
  EXPECT_TRUE(cell.CancelClient(99).empty());
  EXPECT_EQ(cell.in_flight(), 1u);
}

}  // namespace
}  // namespace mars::net
