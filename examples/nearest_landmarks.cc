// "What's around me?" — an AR side panel: as the tourist moves, list the
// k nearest buildings using the R-tree's best-first nearest-neighbour
// search over the object index, and show how much of each is already
// resident locally (base / partial / full detail).
//
//   ./build/examples/nearest_landmarks

#include <cstdio>

#include "client/object_store.h"
#include "client/streaming_client.h"
#include "common/units.h"
#include "core/system.h"
#include "index/rtree.h"
#include "net/link.h"
#include "workload/tour.h"

int main() {
  using namespace mars;  // NOLINT

  core::System::Config config;
  config.scene.object_count = 60;
  config.scene.space = geometry::MakeBox2(0, 0, 3000, 3000);
  config.scene.seed = 8;
  auto system_or = core::System::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  // A dedicated 2D R-tree over the building footprints for the panel's
  // kNN lookups.
  index::RTree2 landmarks;
  for (size_t i = 0; i < system.db().object_bounds().size(); ++i) {
    const auto& b = system.db().object_bounds()[i];
    landmarks.Insert(geometry::Box2({b.lo(0), b.lo(1)}, {b.hi(0), b.hi(1)}),
                     static_cast<int64_t>(i));
  }

  workload::TourOptions tour_options;
  tour_options.space = config.scene.space;
  tour_options.kind = workload::TourKind::kPedestrian;
  tour_options.target_speed = 0.3;
  tour_options.frames = 60;
  tour_options.seed = 14;
  const auto tour = workload::GenerateTour(tour_options);

  net::SimulatedLink link;
  client::StreamingClient::Options options;
  options.query_fraction = 0.15;
  client::StreamingClient client(options, system.space(), &system.server(),
                                 &link);
  client::ClientObjectStore store(&system.db());

  for (size_t t = 0; t < tour.size(); ++t) {
    const auto report = client.Step(tour[t].position, tour[t].speed);
    for (index::RecordId id : report.records) store.AddRecord(id);
    if (t % 20 != 19) continue;

    std::printf("\n@ (%.0f, %.0f), speed %.2f — nearest landmarks:\n",
                tour[t].position.x, tour[t].position.y, tour[t].speed);
    std::vector<index::RTree2::Entry> nearest;
    landmarks.NearestNeighbors({tour[t].position.x, tour[t].position.y}, 5,
                               &nearest);
    for (const auto& hit : nearest) {
      const int32_t obj = static_cast<int32_t>(hit.value);
      const double distance = std::sqrt(index::RTree2::MinDistanceSquared(
          hit.box, {tour[t].position.x, tour[t].position.y}));
      const int64_t have = store.CoefficientCount(obj);
      const int64_t total = system.db().object(obj).coefficient_count();
      const char* status = !store.HasBase(obj)   ? "not loaded"
                           : have == total       ? "full detail"
                           : have > 0            ? "partial"
                                                 : "base only";
      std::printf("  building %-3d  %6.0f m away  %-11s (%lld/%lld coeffs)\n",
                  obj, distance, status, static_cast<long long>(have),
                  static_cast<long long>(total));
    }
  }
  std::printf("\ntotal transferred: %s over %lld frames\n",
              common::FormatBytes(client.total_bytes()).c_str(),
              static_cast<long long>(client.frames()));
  return 0;
}
