// Progressive refinement (paper Secs. III-IV): a client approaches a
// building and slows to a stop in front of it. As its speed falls, the
// speed-to-resolution map lowers w_min step by step and the client fetches
// only the *incremental* band of wavelet coefficients — never re-fetching
// what it already holds. The reconstruction error of the locally held mesh
// shrinks with every step.
//
//   ./build/examples/progressive_streaming

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "geometry/vec.h"
#include "index/record.h"
#include "mesh/mesh.h"
#include "mesh/primitives.h"
#include "mesh/subdivide.h"
#include "wavelet/decompose.h"
#include "wavelet/reconstruct.h"

int main() {
  using namespace mars;  // NOLINT

  // One building with 4 levels of displaced detail.
  const mesh::Mesh base = mesh::MakeBuilding(30, 40, 25, 8);
  common::Rng rng(11);
  mesh::Mesh fine = base;
  double amplitude = 2.5;
  for (int level = 0; level < 4; ++level) {
    mesh::Subdivision sub = mesh::Subdivide(fine);
    for (const mesh::OddVertex& odd : sub.odd_vertices) {
      geometry::Vec3 dir{rng.Normal(), rng.Normal(), rng.Normal()};
      const double norm = dir.Norm();
      if (norm > 1e-12) dir = dir / norm;
      sub.mesh.mutable_vertex(odd.vertex) +=
          dir * (amplitude * rng.Uniform(0.1, 1.0));
    }
    fine = std::move(sub.mesh);
    amplitude *= 0.45;
  }

  auto mr = wavelet::Decompose(fine, base, 4);
  if (!mr.ok()) {
    std::fprintf(stderr, "%s\n", mr.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Object: %d base vertices, %d wavelet coefficients, %d final "
      "vertices\n\n",
      mr->base().vertex_count(), mr->coefficient_count(),
      fine.vertex_count());

  // The client decelerates: each row is one query at a lower speed. Only
  // the coefficients in the new band (w_prev > w >= w_now) travel.
  const std::vector<double> speeds = {1.0, 0.75, 0.5, 0.25, 0.1, 0.001};
  double w_prev = 1.0 + 1e-9;  // nothing held yet
  int64_t held = 0;
  int64_t total_bytes = 0;

  std::printf("%-8s %-8s %12s %14s %14s %16s\n", "speed", "w_min",
              "band coeffs", "band bytes", "total bytes", "mesh error (m)");
  for (double speed : speeds) {
    const double w_now = speed;  // the default speed->resolution map
    int64_t band = 0;
    for (const auto& c : mr->coefficients()) {
      if (c.w >= w_now && c.w < w_prev) ++band;
    }
    held += band;
    const int64_t band_bytes = band * index::kCoefficientWireBytes;
    total_bytes += band_bytes;

    // Reconstruct from everything held so far and measure fidelity.
    const mesh::Mesh approx = wavelet::Reconstruct(*mr, w_now);
    const double error = wavelet::MaxVertexDistance(approx, fine);

    std::printf("%-8.3f %-8.3f %12lld %14s %14s %16.4f\n", speed, w_now,
                static_cast<long long>(band),
                common::FormatBytes(band_bytes).c_str(),
                common::FormatBytes(total_bytes).c_str(), error);
    w_prev = w_now;
  }

  std::printf(
      "\nAt rest the client holds all %lld coefficients and the mesh is "
      "exact;\nthe total transfer equals one full-resolution fetch — no "
      "byte was sent twice.\n",
      static_cast<long long>(held));
  return 0;
}
