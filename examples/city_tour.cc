// The paper's motivating scenario: an augmented-reality city tour. A
// tourist rides a tram (or walks) through a city of 3D buildings, viewing
// them through a mobile device that streams multiresolution object data
// over a 256 Kbps / 200 ms wireless link.
//
//   ./build/examples/city_tour [tram|walk] [speed]
//
// Runs the same tour through the full motion-aware system and through the
// naive full-resolution system, then prints a side-by-side report — a
// one-shot version of the paper's Fig. 14 comparison.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/units.h"
#include "core/system.h"
#include "workload/tour.h"

int main(int argc, char** argv) {
  using namespace mars;  // NOLINT

  workload::TourKind kind = workload::TourKind::kTram;
  double speed = 0.5;
  if (argc > 1 && std::strcmp(argv[1], "walk") == 0) {
    kind = workload::TourKind::kPedestrian;
  }
  if (argc > 2) {
    speed = std::atof(argv[2]);
    if (speed <= 0.0 || speed > 1.0) {
      std::fprintf(stderr, "speed must be in (0, 1]\n");
      return 1;
    }
  }

  core::System::Config config;
  config.scene.object_count = 150;  // ~30 MB city
  config.scene.seed = 2026;
  std::printf("Building the city (%d buildings)...\n",
              config.scene.object_count);
  auto system_or = core::System::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;
  std::printf("City dataset: %s\n",
              common::FormatBytes(system.db().total_bytes()).c_str());

  workload::TourOptions tour_options;
  tour_options.kind = kind;
  tour_options.target_speed = speed;
  tour_options.frames = 240;
  tour_options.seed = 4;
  const auto tour = workload::GenerateTour(tour_options);
  std::printf("Tour: %s, %zu frames, %.0f m, cruise speed %.2f\n\n",
              kind == workload::TourKind::kTram ? "tram" : "walk",
              tour.size(), workload::TourDistance(tour), speed);

  client::BufferedClient::Options ma;
  ma.query_fraction = 0.05;
  ma.buffer_bytes = 64 * common::kKiB;
  const core::RunMetrics motion_aware = system.RunBuffered(tour, ma);

  client::NaiveObjectClient::Options naive;
  naive.query_fraction = 0.05;
  naive.cache_bytes = 64 * common::kKiB;
  const core::RunMetrics baseline = system.RunNaiveObject(tour, naive);

  std::printf("%-28s %14s %14s\n", "", "motion-aware", "naive");
  std::printf("%-28s %14s %14s\n", "data transferred",
              common::FormatBytes(motion_aware.total_bytes()).c_str(),
              common::FormatBytes(baseline.total_bytes()).c_str());
  std::printf("%-28s %13.3fs %13.3fs\n", "mean response / frame",
              motion_aware.MeanResponseSeconds(),
              baseline.MeanResponseSeconds());
  std::printf("%-28s %13.1f%% %14s\n", "cache hit rate",
              100.0 * motion_aware.cache_hit_rate, "(LRU)");
  std::printf("%-28s %13.1f%% %14s\n", "prefetch utilization",
              100.0 * motion_aware.data_utilization, "-");
  std::printf("%-28s %14.1f %14.1f\n", "index I/O per frame",
              motion_aware.MeanNodeAccesses(), baseline.MeanNodeAccesses());
  if (motion_aware.MeanResponseSeconds() > 0) {
    std::printf("\nThe motion-aware system answered queries %.1fx faster.\n",
                baseline.MeanResponseSeconds() /
                    motion_aware.MeanResponseSeconds());
  }
  return 0;
}
