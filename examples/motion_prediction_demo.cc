// Motion prediction and buffer allocation, visualized (paper Sec. V).
//
// A client drives east and then turns north. At three moments we print an
// ASCII heatmap of the predicted block-visit probabilities around the
// client (Fig. 4(b) of the paper), the aggregated per-direction
// probabilities, and the resulting Eq.-2 buffer allocation for a 24-block
// budget.
//
//   ./build/examples/motion_prediction_demo

#include <cmath>
#include <cstdio>
#include <vector>

#include "buffer/sector_allocator.h"
#include "common/rng.h"
#include "geometry/grid.h"
#include "motion/grid_probability.h"
#include "motion/predictor.h"
#include "motion/sectors.h"

namespace {

using namespace mars;  // NOLINT

void Snapshot(const motion::MotionPredictor& predictor,
              const geometry::GridPartition& grid,
              const geometry::Vec2& position, const char* label) {
  common::Rng rng(13);
  const motion::BlockProbabilities probs = motion::ComputeBlockProbabilities(
      predictor, grid, motion::GridProbabilityOptions(), rng);

  std::printf("\n--- %s (client at %.0f, %.0f) ---\n", label, position.x,
              position.y);

  // Heatmap of an 11x11 block neighbourhood centred on the client.
  const geometry::BlockCoord center = grid.BlockOfPoint(position);
  const char* shades = " .:-=+*#%@";
  double max_p = 0.0;
  for (const auto& [block, p] : probs) max_p = std::max(max_p, p);
  for (int dj = 5; dj >= -5; --dj) {
    std::printf("  ");
    for (int di = -5; di <= 5; ++di) {
      const geometry::BlockCoord c{center.i + di, center.j + dj};
      if (!grid.IsValidCoord(c)) {
        std::printf("?");
        continue;
      }
      const auto it = probs.find(grid.BlockId(c));
      double p = it == probs.end() ? 0.0 : it->second;
      if (di == 0 && dj == 0) {
        std::printf("O");  // the client
        continue;
      }
      const int shade =
          max_p > 0 ? static_cast<int>(9.0 * p / max_p + 0.5) : 0;
      std::printf("%c", shades[shade]);
    }
    std::printf("\n");
  }

  motion::SectorPartition partition(position, 4);
  const auto directions = partition.Aggregate(grid, probs);
  const auto allocation = buffer::AllocateBuffer(directions.p, 24);
  const char* names[4] = {"east", "north", "west", "south"};
  std::printf("  direction probabilities / buffer allocation (24 blocks):\n");
  for (int s = 0; s < 4; ++s) {
    std::printf("    %-6s p=%.3f -> %2d blocks\n", names[s],
                directions.p[s], allocation[s]);
  }
}

}  // namespace

int main() {
  const geometry::Box2 space = geometry::MakeBox2(0, 0, 2000, 2000);
  const geometry::GridPartition grid(space, 100, 100);  // 20 m blocks
  motion::MotionPredictor predictor;

  // Phase 1: eastbound cruise.
  geometry::Vec2 pos{400, 1000};
  for (int t = 0; t < 40; ++t) {
    pos += {10, 0};
    predictor.Observe(pos);
  }
  Snapshot(predictor, grid, pos, "cruising east");

  // Phase 2: the turn — a few frames curving north.
  for (int t = 0; t < 6; ++t) {
    const double angle = (t + 1) * M_PI / 12.0;  // 15 degrees per frame
    pos += {10 * std::cos(angle), 10 * std::sin(angle)};
    predictor.Observe(pos);
  }
  Snapshot(predictor, grid, pos, "mid-turn");

  // Phase 3: northbound cruise; the model relearns the heading.
  for (int t = 0; t < 40; ++t) {
    pos += {0, 10};
    predictor.Observe(pos);
  }
  Snapshot(predictor, grid, pos, "cruising north");

  std::printf(
      "\nThe buffer budget follows the probability mass: ahead of the\n"
      "client before the turn, spread while turning, and rotated 90\n"
      "degrees after it — the behaviour the motion-aware prefetcher\n"
      "exploits.\n");
  return 0;
}
