// Quickstart: build a small scene, run one motion-aware client along a tram
// tour, and print what moved over the (simulated) wireless link.
//
//   ./build/examples/quickstart
//
// This touches every layer of MARS: procedural scene generation, wavelet
// decomposition, the support-region index, Algorithm-1 incremental
// retrieval, the Kalman/RLS motion predictor, the Eq.-2 buffer allocator,
// and the simulated 256 Kbps / 200 ms link.

#include <cstdio>

#include "client/buffered_client.h"
#include "common/units.h"
#include "core/system.h"
#include "workload/scene.h"
#include "workload/tour.h"

int main() {
  using namespace mars;  // NOLINT: example brevity

  // A small city: 50 buildings (~10 MB of multiresolution records)
  // uniformly placed over a 10 km x 10 km space.
  core::System::Config config;
  config.scene.object_count = 50;
  config.scene.seed = 1;

  std::printf("Generating scene (%d objects)...\n",
              config.scene.object_count);
  auto system_or = core::System::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "scene generation failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;
  std::printf("Dataset: %s in %d objects, %zu records\n",
              common::FormatBytes(system.db().total_bytes()).c_str(),
              system.db().object_count(), system.db().records().size());

  // A tram tour at moderate speed, 120 query frames.
  workload::TourOptions tour_options;
  tour_options.kind = workload::TourKind::kTram;
  tour_options.target_speed = 0.4;
  tour_options.frames = 120;
  tour_options.seed = 11;
  const auto tour = workload::GenerateTour(tour_options);

  client::BufferedClient::Options client_options;
  client_options.buffer_bytes = 64 * common::kKiB;

  std::printf("Running %zu frames (tram tour, speed 0.4)...\n", tour.size());
  const core::RunMetrics metrics = system.RunBuffered(tour, client_options);

  std::printf("\n-- results --\n");
  std::printf("frames                 : %lld\n",
              static_cast<long long>(metrics.frames));
  std::printf("tour distance          : %.0f m\n", metrics.tour_distance);
  std::printf("demand bytes           : %s\n",
              common::FormatBytes(metrics.demand_bytes).c_str());
  std::printf("prefetch bytes         : %s\n",
              common::FormatBytes(metrics.prefetch_bytes).c_str());
  std::printf("mean response / frame  : %.3f s\n",
              metrics.MeanResponseSeconds());
  std::printf("cache hit rate         : %.1f %%\n",
              100.0 * metrics.cache_hit_rate);
  std::printf("prefetch utilization   : %.1f %%\n",
              100.0 * metrics.data_utilization);
  std::printf("index I/O (node/frame) : %.1f\n", metrics.MeanNodeAccesses());
  return 0;
}
