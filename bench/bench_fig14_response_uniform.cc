// Reproduces Fig. 14 of the paper: "Query response time (Uniform)" — the
// overall system comparison. Each client travels for the same duration at
// varying speeds over the uniformly placed 60 MB scene with 5% query
// frames; the motion-aware system (multiresolution retrieval + prediction-
// based buffering + support-region index) is compared against the naive
// system (full-resolution objects + object R*-tree + LRU cache).
//
// Expected shapes: the naive system's response time grows steeply with
// speed (more objects swept per unit time, degraded usable bandwidth);
// the motion-aware system stays roughly flat, winning by a factor of a
// few at crawl speed and well over an order of magnitude at speed 1.0;
// tram tours respond slightly faster than pedestrian tours.
//
// CI runs this with MARS_BENCH_SMOKE=1 (shorter tours, two speeds) and
// MARS_BENCH_JSON=<path> for the artifact upload.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/experiment.h"

namespace {

int RunComparison(mars::core::System& system) {
  using namespace mars;  // NOLINT
  const bool smoke = bench::SmokeMode();
  const int32_t frames = smoke ? 60 : 300;
  const int tours_per_setting = smoke ? 2 : 8;
  constexpr double kQueryFraction = 0.05;  // the paper uses 5% here
  const std::vector<double> speeds =
      smoke ? std::vector<double>{0.25, 1.0} : core::StandardSpeeds();

  double ma_top_speed = 0.0;
  double naive_top_speed = 0.0;
  core::PrintTableHeader({"speed", "kind", "MA (s)", "naive (s)",
                          "speedup"});
  for (double speed : speeds) {
    for (auto kind :
         {workload::TourKind::kTram, workload::TourKind::kPedestrian}) {
      const auto tours = bench::MakeTours(kind, speed, tours_per_setting,
                                          frames, -1.0, system.space());
      client::BufferedClient::Options ma;
      ma.query_fraction = kQueryFraction;
      ma.buffer_bytes = 64 * 1024;
      client::NaiveObjectClient::Options naive;
      naive.query_fraction = kQueryFraction;
      naive.cache_bytes = 64 * 1024;
      const core::RunMetrics m = bench::AverageBuffered(system, tours, ma);
      const core::RunMetrics n =
          bench::AverageNaiveObject(system, tours, naive);
      // Per-query response time: averaged over the frames whose query
      // actually went to the server (locally served frames wait for
      // nothing), as the paper reports it.
      const double ma_resp = m.MeanResponsePerExchange();
      const double nv_resp = n.MeanResponsePerExchange();
      const double speedup = ma_resp > 0 ? nv_resp / ma_resp : 0.0;
      if (speed == speeds.back() && kind == workload::TourKind::kTram) {
        ma_top_speed = ma_resp;
        naive_top_speed = nv_resp;
      }
      core::PrintTableRow({core::Fmt(speed, 3), bench::TourKindName(kind),
                           core::Fmt(ma_resp, 3), core::Fmt(nv_resp, 3),
                           core::Fmt(speedup, 1) + "x"});
    }
  }

  const double top_gain =
      ma_top_speed > 0 ? naive_top_speed / ma_top_speed : 0.0;
  if (!bench::WriteBenchJson(
          "fig14_response_uniform",
          {{"ma_response_tram_top_speed_seconds", ma_top_speed, false},
           {"naive_response_tram_top_speed_seconds", naive_top_speed,
            false},
           {"speedup_tram_top_speed", top_gain, true}})) {
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  using namespace mars;  // NOLINT
  auto system_or = core::System::Create(bench::DefaultConfig());
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::PrintTableTitle(
      "Fig. 14 — mean query response time vs speed (uniform data)");
  return RunComparison(**system_or);
}
