// Reproduces Fig. 14 of the paper: "Query response time (Uniform)" — the
// overall system comparison. Each client travels for the same duration at
// varying speeds over the uniformly placed 60 MB scene with 5% query
// frames; the motion-aware system (multiresolution retrieval + prediction-
// based buffering + support-region index) is compared against the naive
// system (full-resolution objects + object R*-tree + LRU cache).
//
// Expected shapes: the naive system's response time grows steeply with
// speed (more objects swept per unit time, degraded usable bandwidth);
// the motion-aware system stays roughly flat, winning by a factor of a
// few at crawl speed and well over an order of magnitude at speed 1.0;
// tram tours respond slightly faster than pedestrian tours.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/experiment.h"

namespace {

void RunComparison(mars::core::System& system) {
  using namespace mars;  // NOLINT
  constexpr int32_t kFrames = 300;
  constexpr double kQueryFraction = 0.05;  // the paper uses 5% here

  core::PrintTableHeader({"speed", "kind", "MA (s)", "naive (s)",
                          "speedup"});
  for (double speed : core::StandardSpeeds()) {
    for (auto kind :
         {workload::TourKind::kTram, workload::TourKind::kPedestrian}) {
      const auto tours = bench::MakeTours(kind, speed, 8,
                                          kFrames, -1.0, system.space());
      client::BufferedClient::Options ma;
      ma.query_fraction = kQueryFraction;
      ma.buffer_bytes = 64 * 1024;
      client::NaiveObjectClient::Options naive;
      naive.query_fraction = kQueryFraction;
      naive.cache_bytes = 64 * 1024;
      const core::RunMetrics m = bench::AverageBuffered(system, tours, ma);
      const core::RunMetrics n =
          bench::AverageNaiveObject(system, tours, naive);
      // Per-query response time: averaged over the frames whose query
      // actually went to the server (locally served frames wait for
      // nothing), as the paper reports it.
      const double ma_resp = m.MeanResponsePerExchange();
      const double nv_resp = n.MeanResponsePerExchange();
      const double speedup = ma_resp > 0 ? nv_resp / ma_resp : 0.0;
      core::PrintTableRow({core::Fmt(speed, 3), bench::TourKindName(kind),
                           core::Fmt(ma_resp, 3), core::Fmt(nv_resp, 3),
                           core::Fmt(speedup, 1) + "x"});
    }
  }
}

}  // namespace

int main() {
  using namespace mars;  // NOLINT
  auto system_or = core::System::Create(bench::DefaultConfig());
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::PrintTableTitle(
      "Fig. 14 — mean query response time vs speed (uniform data)");
  RunComparison(**system_or);
  return 0;
}
