// Ablation: multiresolution encoding — wavelets vs progressive meshes.
//
// The paper's Related Work argues for wavelets over Hoppe-style
// progressive meshes because "wavelet-based approaches offer a more
// compact coding for progressive transmission of data and thus require
// less bandwidth for wireless transmissions". This bench quantifies that
// claim on MARS's procedural buildings: for matching detail levels (same
// vertex counts), it compares the cumulative bytes a client must receive.
//
// A subdivision-wavelet coefficient only carries a detail vector — its
// position and connectivity are implied by the subdivision structure — so
// the wavelet stream is substantially smaller than the vertex-split
// stream, which must ship explicit connectivity per split.

#include <cstdio>

#include "common/rng.h"
#include "common/units.h"
#include "core/experiment.h"
#include "geometry/vec.h"
#include "mesh/mesh.h"
#include "mesh/primitives.h"
#include "mesh/progressive.h"
#include "mesh/subdivide.h"
#include "wavelet/decompose.h"

namespace {

using namespace mars;  // NOLINT

// Per-coefficient wire size of the *pure geometry payload* of a
// subdivision wavelet: a 3-float detail vector (position/connectivity are
// implicit). This is the like-for-like comparison against the
// VertexSplit record; the server record format of src/index/record.h
// additionally models index/header overhead for both.
constexpr int64_t kWaveletDetailBytes = 12;

}  // namespace

int main() {
  // One detailed building, 4 levels (1794 final vertices).
  common::Rng rng(21);
  const mesh::Mesh base = mesh::MakeBuilding(30, 40, 20, 6);
  mesh::Mesh fine = base;
  double amplitude = 2.5;
  for (int level = 0; level < 4; ++level) {
    mesh::Subdivision sub = mesh::Subdivide(fine);
    for (const mesh::OddVertex& odd : sub.odd_vertices) {
      geometry::Vec3 dir{rng.Normal(), rng.Normal(), rng.Normal()};
      const double n = dir.Norm();
      if (n > 1e-12) dir = dir / n;
      sub.mesh.mutable_vertex(odd.vertex) +=
          dir * (amplitude * rng.Uniform(0.1, 1.0));
    }
    fine = std::move(sub.mesh);
    amplitude *= 0.45;
  }

  auto wavelet_or = wavelet::Decompose(fine, base, 4);
  if (!wavelet_or.ok()) {
    std::fprintf(stderr, "%s\n", wavelet_or.status().ToString().c_str());
    return 1;
  }
  auto pm_or =
      mesh::ProgressiveMesh::Build(fine, base.vertex_count());
  if (!pm_or.ok()) {
    std::fprintf(stderr, "%s\n", pm_or.status().ToString().c_str());
    return 1;
  }
  const wavelet::MultiResMesh& mr = *wavelet_or;
  const mesh::ProgressiveMesh& pm = *pm_or;

  std::printf("object: %d base vertices, %d fine vertices\n",
              base.vertex_count(), fine.vertex_count());
  std::printf("wavelet coefficients: %d; PM vertex splits: %d\n",
              mr.coefficient_count(), pm.split_count());

  core::PrintTableTitle(
      "Ablation — progressive-transmission bytes at matching vertex "
      "counts");
  core::PrintTableHeader({"vertices", "wavelet", "prog-mesh", "PM/wavelet"});
  for (double fraction : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    // Target vertex count above the base.
    const int32_t extra = static_cast<int32_t>(
        fraction * (fine.vertex_count() - base.vertex_count()));
    // Wavelets: `extra` detail vectors (clients fetch the largest-w
    // coefficients first; every coefficient costs the same on the wire).
    const int64_t wavelet_bytes =
        static_cast<int64_t>(extra) * kWaveletDetailBytes;
    // Progressive mesh: the first `extra` vertex splits.
    const int32_t splits = std::min<int32_t>(extra, pm.split_count());
    const int64_t pm_bytes = pm.SplitsWireBytes(splits);
    core::PrintTableRow(
        {std::to_string(base.vertex_count() + extra),
         common::FormatBytes(wavelet_bytes),
         common::FormatBytes(pm_bytes),
         core::Fmt(wavelet_bytes > 0
                       ? static_cast<double>(pm_bytes) / wavelet_bytes
                       : 0.0,
                   2) + "x"});
  }
  std::printf(
      "\nWavelet details need no explicit connectivity (implied by the\n"
      "subdivision structure); vertex splits ship it per record.\n");
  return 0;
}
