// Reproduces Fig. 11 of the paper: "Effect of varying speed" on the
// buffer-management metrics — cache hit rate and data utilization against
// client speed, motion-aware vs naive schemes, tram and pedestrian tours,
// at the default 64 KB buffer.
//
// Clients cover the same distance at every speed, so each run crosses the
// same number of grid-block frontiers regardless of how fast it moves
// (hit/miss events are counted when a new region is visited). The sweep
// starts at 0.05 rather than the 0.001 used elsewhere: a client at speed
// 0.001 covers ~45 m in any practical number of frames and simply never
// leaves its buffered region (see EXPERIMENTS.md).
//
// Expected shapes: hit rate rises with speed — fast clients buffer blocks
// at low resolution, so many more blocks fit in the same bytes (the paper
// reports 64% -> 91% for trams); utilization is lower at high speed
// (longer-distance predictions); the motion-aware scheme dominates the
// naive one on both metrics.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/experiment.h"

int main() {
  using namespace mars;  // NOLINT

  auto system_or = core::System::Create(bench::DefaultConfig());
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  constexpr double kDistance = 1500.0;  // meters, equal at every speed

  core::PrintTableTitle(
      "Fig. 11 — hit rate and utilization (%) vs speed (64K buffer, equal "
      "distance)");
  core::PrintTableHeader({"speed", "kind", "MA hit", "naive hit", "MA util",
                          "naive util"});
  for (double speed : {0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    for (auto kind :
         {workload::TourKind::kTram, workload::TourKind::kPedestrian}) {
      const auto tours = bench::MakeTours(kind, speed, bench::kDefaultTours,
                                          0, kDistance, system.space());
      client::BufferedClient::Options ma;
      ma.buffer_bytes = 64 * 1024;
      ma.motion_aware = true;
      client::BufferedClient::Options naive = ma;
      naive.motion_aware = false;
      const core::RunMetrics m = bench::AverageBuffered(system, tours, ma);
      const core::RunMetrics n =
          bench::AverageBuffered(system, tours, naive);
      core::PrintTableRow({core::Fmt(speed, 3), bench::TourKindName(kind),
                           core::Fmt(100 * m.cache_hit_rate, 1),
                           core::Fmt(100 * n.cache_hit_rate, 1),
                           core::Fmt(100 * m.data_utilization, 1),
                           core::Fmt(100 * n.data_utilization, 1)});
    }
  }
  return 0;
}
