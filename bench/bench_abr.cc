// Extension experiment: the per-client adaptive resolution ladder (ABR
// for wavelets) closing the loop under overload.
//
// A fleet of motion-aware clients shares one cell provisioned at ~1/3
// of the fleet's full-detail demand. With WFQ + admission alone clients
// keep requesting the static speed-mapped band, the cell queues minutes
// deep, and exchanges land long after the tour has moved on. With the
// adaptive ladder on (qos/adaptive_ladder.h) each client climbs to a
// coarser band when backpressured and probes back down when the cell
// clears — trading resolution it cannot download anyway for exchanges
// that actually arrive in time.
//
// The bench scores both legs with an aggregate utility
//
//   utility = mean over clients of (requested band width x coverage)
//
// where band width = 1 - mean requested w_min (the fraction of the
// coefficient spectrum asked for; tracked by the policy for the ABR leg,
// computed from the static mapping over the tour for the baseline leg)
// and coverage discounts frames rendered stale and exchanges that spend
// their deadline window waiting (see Coverage below). A frame delivered
// seconds late is as useless to a moving client as one never delivered,
// so lateness counts against coverage. It fails loudly if:
//
//   * ABR does not improve aggregate utility by at least 1.3x over
//     admission-only (the point of closing the loop), or
//   * the motion-aware p99 delivery delay regresses under ABR, or
//   * ABR-leg aggregate metrics differ between workers=1 and workers=8
//     (ladder decisions must stay deterministically ordered).
//
// CI runs this with MARS_BENCH_SMOKE=1 / MARS_BENCH_JSON=<path>; the
// emitted metrics are deterministic simulated quantities, gated against
// bench/baselines/abr.json by tools/bench_gate.py.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/experiment.h"
#include "fleet/fleet_engine.h"
#include "workload/tour.h"

namespace {

using namespace mars;  // NOLINT

struct Shape {
  int32_t clients;  // alternating streaming / buffered
  int32_t frames;
};

// All motion-aware (the ladder has no axis on naive whole-object
// clients): alternating streaming and buffered members, querying on 40%
// of frames so demand is sustained, not bursty.
std::vector<fleet::ClientSpec> MakeOverloadedFleet(const Shape& shape) {
  std::vector<fleet::ClientSpec> specs;
  specs.reserve(static_cast<size_t>(shape.clients));
  for (int32_t id = 0; id < shape.clients; ++id) {
    fleet::ClientSpec spec;
    spec.id = id;
    spec.kind = (id % 2 == 0) ? fleet::ClientKind::kStreaming
                              : fleet::ClientKind::kBuffered;
    spec.tour_kind = (id % 2 == 0) ? workload::TourKind::kTram
                                   : workload::TourKind::kPedestrian;
    spec.frames = shape.frames;
    spec.seed = 100 + static_cast<uint64_t>(id);
    spec.tour_seed = 900 + static_cast<uint64_t>(id);
    spec.query_fraction = 0.4;
    specs.push_back(spec);
  }
  return specs;
}

fleet::FleetOptions MakeOptions(bool abr, int workers) {
  fleet::FleetOptions options;
  options.workers = workers;
  // ~3x overload: the fleet's full-detail demand is about three times
  // what this cell drains over a tour, so the baseline leg queues
  // minutes deep while a one-rung-coarser fleet fits.
  options.cell.cell_bandwidth_kbps = 2048.0;
  options.cell.client_bandwidth_kbps = 1024.0;
  options.cell.discipline = net::SharedMediumLink::Discipline::kWeightedFair;
  options.admission.enabled = true;
  // Loose per-client quotas: the contended resource is the cell itself,
  // and backpressure should reflect real congestion (deep queues on a
  // saturated link), not a tight static allowance.
  options.admission.max_client_backlog_bytes = 512 * 1024;
  options.admission.max_client_queue_depth = 16;
  options.abr.enabled = abr;
  options.abr.ladder.ladder_steps = 3;
  options.abr.ladder.target_goodput_bps = 16384.0;
  return options;
}

// Mean static-mapped w_min over a client's tour — the baseline leg's
// requested resolution (no policy object exists to track it when ABR is
// off; the static mapping is a pure function of the tour, so replaying
// the tour reproduces it exactly, modulo shed frames that never request).
double StaticMeanW(const core::System& system,
                   const fleet::ClientSpec& spec) {
  workload::TourOptions tour;
  tour.kind = spec.tour_kind;
  tour.space = system.space();
  tour.target_speed = spec.speed;
  tour.frames = spec.frames;
  tour.seed = spec.tour_seed;
  const std::vector<workload::TourPoint> points = workload::GenerateTour(tour);
  if (points.empty()) return 0.0;
  const qos::SpeedResolutionMap map;
  double sum = 0.0;
  for (const workload::TourPoint& p : points) {
    sum += map.MapSpeedToResolution(p.speed);
  }
  return sum / static_cast<double>(points.size());
}

// The delivery deadline: one query-frame interval. An exchange that
// lands later than the next frame was wasted motion.
constexpr double kDeadlineSeconds = 1.0;

// Coverage: fresh-frame fraction times a smooth lateness discount
// deadline / (deadline + mean wait per exchange). The discount is the
// fraction of each deadline window actually spent rendering current
// data rather than waiting; a leg whose exchanges land in ~0 wait keeps
// ~1.0, one that waits minutes per exchange keeps almost nothing. The
// smooth form (rather than a hard timely-or-not cut) rewards the ladder
// for shortening the tail even when an exchange still misses the
// deadline.
double Coverage(const core::RunMetrics& m) {
  if (m.frames == 0) return 0.0;
  const double fresh = 1.0 - static_cast<double>(m.stale_frames) /
                                 static_cast<double>(m.frames);
  return fresh * kDeadlineSeconds /
         (kDeadlineSeconds + m.MeanResponsePerExchange());
}

// Hard-deadline timeliness, reported alongside the utility: fraction of
// exchanges delivered within one frame interval.
double TimelyFraction(const core::RunMetrics& m) {
  return m.response_histogram.FractionAtMost(kDeadlineSeconds);
}

// Aggregate utility of one leg: mean over clients of
// (delivered band width) x coverage.
double AggregateUtility(const core::System& system,
                        const fleet::FleetResult& result, bool abr) {
  double sum = 0.0;
  int32_t counted = 0;
  for (const fleet::ClientResult& client : result.clients) {
    const core::RunMetrics& m = client.metrics;
    if (m.frames == 0) continue;
    const double mean_w =
        abr && client.abr.map_calls > 0
            ? client.abr.resolution_sum /
                  static_cast<double>(client.abr.map_calls)
            : StaticMeanW(system, client.spec);
    sum += (1.0 - mean_w) * Coverage(m);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace

int main() {
  auto system_or = core::System::Create(bench::DefaultConfig());
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  const bool smoke = bench::SmokeMode();
  const Shape shape = smoke ? Shape{8, 60} : Shape{12, 120};

  struct Leg {
    const char* label;
    bool abr;
    fleet::FleetResult result;
  };
  Leg legs[] = {{"wfq+admission", false, {}}, {"+abr", true, {}}};

  for (Leg& leg : legs) {
    fleet::FleetEngine engine(system, MakeOptions(leg.abr, 8),
                              MakeOverloadedFleet(shape));
    leg.result = engine.Run();

    // Determinism check: the serial replay must match bit for bit.
    fleet::FleetEngine replay(system, MakeOptions(leg.abr, 1),
                              MakeOverloadedFleet(shape));
    const fleet::FleetResult serial = replay.Run();
    if (core::RunMetricsJson(serial.aggregate) !=
        core::RunMetricsJson(leg.result.aggregate)) {
      std::fprintf(stderr,
                   "FATAL: %s metrics diverged between workers=8 and "
                   "workers=1\n",
                   leg.label);
      return 1;
    }
  }

  const fleet::FleetResult& base = legs[0].result;
  const fleet::FleetResult& abr = legs[1].result;
  const double utility_base = AggregateUtility(system, base, false);
  const double utility_abr = AggregateUtility(system, abr, true);
  const double gain = utility_base > 0.0 ? utility_abr / utility_base : 0.0;
  const double p99_base = base.aggregate.P99ResponseSeconds();
  const double p99_abr = abr.aggregate.P99ResponseSeconds();

  core::PrintTableTitle(
      "Adaptive resolution ladder - utility under a 3x-overloaded cell");
  core::PrintTableHeader({"leg", "utility", "coverage", "timely", "p99 s",
                          "deferred", "step-ups", "top-ups"});
  for (const Leg& leg : legs) {
    const fleet::FleetResult& r = leg.result;
    core::PrintTableRow(
        {leg.label,
         core::Fmt(AggregateUtility(system, r, leg.abr), 4),
         core::Fmt(Coverage(r.aggregate), 3),
         core::Fmt(TimelyFraction(r.aggregate), 3),
         core::Fmt(r.aggregate.P99ResponseSeconds(), 3),
         std::to_string(r.deferred_exchanges),
         std::to_string(r.abr_step_ups), std::to_string(r.abr_top_ups)});
  }
  std::printf(
      "aggregate utility: admission %.4f vs +abr %.4f -> %.2fx better\n",
      utility_base, utility_abr, gain);
  std::printf("p99 delivery: admission %.3fs vs +abr %.3fs\n", p99_base,
              p99_abr);
  std::printf("aggregate metrics identical at workers 1 and 8\n");

  if (!bench::WriteBenchJson(
          "abr",
          {{"utility_admission", utility_base, true},
           {"utility_abr", utility_abr, true},
           {"utility_gain", gain, true},
           {"coverage_admission", Coverage(base.aggregate), true},
           {"coverage_abr", Coverage(abr.aggregate), true},
           {"timely_admission", TimelyFraction(base.aggregate), true},
           {"timely_abr", TimelyFraction(abr.aggregate), true},
           {"p99_admission_seconds", p99_base, false},
           {"p99_abr_seconds", p99_abr, false},
           {"abr_step_ups", static_cast<double>(abr.abr_step_ups), false},
           {"abr_top_ups", static_cast<double>(abr.abr_top_ups), false}})) {
    return 1;
  }

  if (gain < 1.3) {
    std::fprintf(stderr,
                 "FATAL: ABR improved aggregate utility only %.2fx over "
                 "admission-only (need >= 1.3x)\n",
                 gain);
    return 1;
  }
  if (p99_abr > p99_base) {
    std::fprintf(stderr,
                 "FATAL: ABR regressed motion-aware p99 (%.3fs > %.3fs)\n",
                 p99_abr, p99_base);
    return 1;
  }
  return 0;
}
