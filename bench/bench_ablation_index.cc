// Ablation: index construction choices (DESIGN.md Sec. 4).
//
// Measures window-query I/O (node accesses per query) over the default
// scene's record table for:
//   - R* split + forced reinsert (the paper's configuration)
//   - R* split without forced reinsert
//   - Guttman quadratic split (classic R-tree)
// and for node capacities 10 / 20 / 40 around the paper's page-size-20
// choice. Expected shapes: R* with reinsertion is the cheapest to query;
// capacity changes trade tree height against per-node scan width.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "index/access.h"
#include "workload/scene.h"

namespace {

double MeanQueryIo(mars::index::SupportRegionIndex& index,
                   const mars::geometry::Box2& space, int queries) {
  mars::common::Rng rng(7);
  std::vector<mars::index::RecordId> out;
  index.ResetStats();
  for (int q = 0; q < queries; ++q) {
    const double w = space.Extent(0) * 0.1;
    const double x = rng.Uniform(space.lo(0), space.hi(0) - w);
    const double y = rng.Uniform(space.lo(1), space.hi(1) - w);
    out.clear();
    index.Query(mars::geometry::MakeBox2(x, y, x + w, y + w), 0.5, 1.0,
                &out);
  }
  return static_cast<double>(index.node_accesses()) / queries;
}

}  // namespace

int main() {
  using namespace mars;  // NOLINT

  workload::SceneOptions scene = workload::SceneForDatasetSize(20);
  auto db = workload::GenerateScene(scene);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("records: %zu\n", db->records().size());

  struct Variant {
    const char* name;
    index::SplitPolicy policy;
    bool reinsert;
  };
  const std::vector<Variant> variants = {
      {"rstar+reinsert", index::SplitPolicy::kRStar, true},
      {"rstar", index::SplitPolicy::kRStar, false},
      {"guttman", index::SplitPolicy::kGuttmanQuadratic, false},
  };

  core::PrintTableTitle(
      "Ablation — node accesses per 10% window query (w in [0.5, 1])");
  core::PrintTableHeader({"variant", "cap=10", "cap=20", "cap=40"});
  for (const Variant& v : variants) {
    std::vector<std::string> row = {v.name};
    for (int32_t capacity : {10, 20, 40}) {
      index::RTreeOptions options;
      options.split_policy = v.policy;
      options.forced_reinsert = v.reinsert;
      options.node_capacity = capacity;
      index::SupportRegionIndex idx(options);
      idx.Build(db->records());
      row.push_back(core::Fmt(MeanQueryIo(idx, scene.space, 300), 1));
    }
    core::PrintTableRow(row);
  }
  return 0;
}
