// Ablation: index construction choices (DESIGN.md Sec. 4).
//
// Measures window-query I/O (node accesses per query) over the default
// scene's record table for:
//   - R* split + forced reinsert (the paper's configuration)
//   - R* split without forced reinsert
//   - Guttman quadratic split (classic R-tree)
// and for node capacities 10 / 20 / 40 around the paper's page-size-20
// choice. Expected shapes: R* with reinsertion is the cheapest to query;
// capacity changes trade tree height against per-node scan width.
//
// Second sweep: the sharded coefficient index at K = 1 / 4 / 16 shards,
// reporting node accesses and wall-clock latency per query for both
// sequential and parallel fan-out. Expected shapes: node accesses stay
// in the same ballpark (fan-out prunes whole shards but K trees are
// each shallower than one big tree), K = 1 matches the plain index
// exactly, and parallel fan-out only helps latency once K is large
// enough that a query crosses several shards.
//
// Under MARS_BENCH_SMOKE the scene and query counts shrink, and the
// deterministic I/O metrics (never wall-clock) are written to
// MARS_BENCH_JSON for the CI regression gate.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "index/access.h"
#include "index/sharded_index.h"
#include "workload/scene.h"

namespace {

double MeanQueryIo(mars::index::CoefficientIndex& index,
                   const mars::geometry::Box2& space, int queries) {
  mars::common::Rng rng(7);
  std::vector<mars::index::RecordId> out;
  index.ResetStats();
  for (int q = 0; q < queries; ++q) {
    const double w = space.Extent(0) * 0.1;
    const double x = rng.Uniform(space.lo(0), space.hi(0) - w);
    const double y = rng.Uniform(space.lo(1), space.hi(1) - w);
    out.clear();
    index.Query(mars::geometry::MakeBox2(x, y, x + w, y + w), 0.5, 1.0,
                &out);
  }
  return static_cast<double>(index.node_accesses()) / queries;
}

// Wall-clock microseconds per query over the same window stream.
double MeanQueryMicros(mars::index::CoefficientIndex& index,
                       const mars::geometry::Box2& space, int queries) {
  mars::common::Rng rng(7);
  std::vector<mars::index::RecordId> out;
  const auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < queries; ++q) {
    const double w = space.Extent(0) * 0.1;
    const double x = rng.Uniform(space.lo(0), space.hi(0) - w);
    const double y = rng.Uniform(space.lo(1), space.hi(1) - w);
    out.clear();
    index.Query(mars::geometry::MakeBox2(x, y, x + w, y + w), 0.5, 1.0,
                &out);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         queries;
}

}  // namespace

int main() {
  using namespace mars;  // NOLINT

  const bool smoke = bench::SmokeMode();
  workload::SceneOptions scene =
      workload::SceneForDatasetSize(smoke ? 5 : 20);
  const int queries = smoke ? 100 : 300;
  auto db = workload::GenerateScene(scene);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("records: %zu\n", db->records().size());

  struct Variant {
    const char* name;
    index::SplitPolicy policy;
    bool reinsert;
  };
  const std::vector<Variant> variants = {
      {"rstar+reinsert", index::SplitPolicy::kRStar, true},
      {"rstar", index::SplitPolicy::kRStar, false},
      {"guttman", index::SplitPolicy::kGuttmanQuadratic, false},
  };

  double reinsert_cap20_io = 0.0;
  core::PrintTableTitle(
      "Ablation — node accesses per 10% window query (w in [0.5, 1])");
  core::PrintTableHeader({"variant", "cap=10", "cap=20", "cap=40"});
  for (const Variant& v : variants) {
    std::vector<std::string> row = {v.name};
    for (int32_t capacity : {10, 20, 40}) {
      index::RTreeOptions options;
      options.split_policy = v.policy;
      options.forced_reinsert = v.reinsert;
      options.node_capacity = capacity;
      index::SupportRegionIndex idx(options);
      idx.Build(db->records());
      const double io = MeanQueryIo(idx, scene.space, queries);
      if (v.reinsert && capacity == 20) reinsert_cap20_io = io;
      row.push_back(core::Fmt(io, 1));
    }
    core::PrintTableRow(row);
  }

  // --- Shard-count sweep ----------------------------------------------------
  std::vector<bench::BenchMetric> metrics = {
      {"rstar_reinsert_cap20_io", reinsert_cap20_io, false},
  };
  static const char* const kShardIoNames[] = {
      "shards_1_io", "shards_4_io", "shards_16_io"};

  core::PrintTableTitle(
      "Sharded index — per 10% window query (w in [0.5, 1])");
  core::PrintTableHeader(
      {"shards", "accesses", "us (seq)", "us (par x4)"});
  int shard_setting = 0;
  for (int32_t shards : {1, 4, 16}) {
    index::ShardedIndexOptions options;
    options.shards = shards;
    index::ShardedCoefficientIndex sequential(options);
    sequential.Build(db->records());
    const double io = MeanQueryIo(sequential, scene.space, queries);
    const double us_seq = MeanQueryMicros(sequential, scene.space, queries);

    options.fanout_workers = 4;
    index::ShardedCoefficientIndex parallel(options);
    parallel.Build(db->records());
    const double us_par = MeanQueryMicros(parallel, scene.space, queries);

    core::PrintTableRow({std::to_string(shards), core::Fmt(io, 1),
                         core::Fmt(us_seq, 1), core::Fmt(us_par, 1)});
    metrics.push_back({kShardIoNames[shard_setting++], io, false});
  }

  if (!bench::WriteBenchJson("ablation_index", metrics)) return 1;
  return 0;
}
