// Ablation: index construction choices (DESIGN.md Sec. 4).
//
// Measures window-query I/O (node accesses per query) over the default
// scene's record table for:
//   - R* split + forced reinsert (the paper's configuration)
//   - R* split without forced reinsert
//   - Guttman quadratic split (classic R-tree)
// and for node capacities 10 / 20 / 40 around the paper's page-size-20
// choice. Expected shapes: R* with reinsertion is the cheapest to query;
// capacity changes trade tree height against per-node scan width.
//
// Second sweep: the sharded coefficient index at K = 1 / 4 / 16 shards,
// reporting node accesses and wall-clock latency per query for both
// sequential and parallel fan-out. Expected shapes: node accesses stay
// in the same ballpark (fan-out prunes whole shards but K trees are
// each shallower than one big tree), K = 1 matches the plain index
// exactly, and parallel fan-out only helps latency once K is large
// enough that a query crosses several shards.
//
// Third sweep: load-adaptive shard rebalancing under a Zipf-placed
// scene whose query stream follows the record density (the hot-spot
// workload of Sec. VII-E). Three settings at K = 8: a uniform scene
// (the fair-load reference), the Zipf scene with static shards, and
// the Zipf scene with the online rebalancer warmed up. The gated
// metrics are the hot shard's share of node accesses and the p99 of
// per-query *max-shard* accesses — the critical path of a parallel
// fan-out and the deterministic latency proxy (wall clock would flake
// on runner speed). Expected shape, enforced below: static sharding
// leaves the hot shard with most of the load and a p99 several times
// the uniform reference; rebalancing pulls the p99 back to within
// 1.5x of it.
//
// Under MARS_BENCH_SMOKE the scene and query counts shrink, and the
// deterministic I/O metrics (never wall-clock) are written to
// MARS_BENCH_JSON for the CI regression gate.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "geometry/box.h"
#include "index/access.h"
#include "index/sharded_index.h"
#include "server/rebalancer.h"
#include "workload/scene.h"

namespace {

double MeanQueryIo(mars::index::CoefficientIndex& index,
                   const mars::geometry::Box2& space, int queries) {
  mars::common::Rng rng(7);
  std::vector<mars::index::RecordId> out;
  index.ResetStats();
  for (int q = 0; q < queries; ++q) {
    const double w = space.Extent(0) * 0.1;
    const double x = rng.Uniform(space.lo(0), space.hi(0) - w);
    const double y = rng.Uniform(space.lo(1), space.hi(1) - w);
    out.clear();
    index.Query(mars::geometry::MakeBox2(x, y, x + w, y + w), 0.5, 1.0,
                &out);
  }
  return static_cast<double>(index.node_accesses()) / queries;
}

// Wall-clock microseconds per query over the same window stream.
double MeanQueryMicros(mars::index::CoefficientIndex& index,
                       const mars::geometry::Box2& space, int queries) {
  mars::common::Rng rng(7);
  std::vector<mars::index::RecordId> out;
  const auto start = std::chrono::steady_clock::now();
  for (int q = 0; q < queries; ++q) {
    const double w = space.Extent(0) * 0.1;
    const double x = rng.Uniform(space.lo(0), space.hi(0) - w);
    const double y = rng.Uniform(space.lo(1), space.hi(1) - w);
    out.clear();
    index.Query(mars::geometry::MakeBox2(x, y, x + w, y + w), 0.5, 1.0,
                &out);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         queries;
}

// Query windows centered on the ground-plane support centers of
// uniformly sampled records: the query load follows the record density,
// so a Zipf-placed scene concentrates it on the cluster.
std::vector<mars::geometry::Box2> RecordWindows(
    const std::vector<mars::index::CoeffRecord>& records,
    const mars::geometry::Box2& space, int count, uint64_t seed) {
  mars::common::Rng rng(seed);
  const double w = space.Extent(0) * 0.05;
  std::vector<mars::geometry::Box2> windows;
  windows.reserve(static_cast<size_t>(count));
  for (int q = 0; q < count; ++q) {
    const auto& r = records[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(records.size()) - 1))];
    const double x = 0.5 * (r.support_bounds.lo(0) + r.support_bounds.hi(0));
    const double y = 0.5 * (r.support_bounds.lo(1) + r.support_bounds.hi(1));
    windows.push_back(mars::geometry::MakeBox2(x - 0.5 * w, y - 0.5 * w,
                                               x + 0.5 * w, y + 0.5 * w));
  }
  return windows;
}

struct SkewPoint {
  double hot_share = 0.0;  // hottest shard's share of node accesses
  double p99_max = 0.0;    // p99 of per-query max-shard accesses
  double mean_io = 0.0;    // mean total accesses per query
};

SkewPoint MeasureSkew(const mars::index::ShardedCoefficientIndex& index,
                      const std::vector<mars::geometry::Box2>& windows) {
  const auto before = index.Stats();
  std::vector<int64_t> max_accesses;
  max_accesses.reserve(windows.size());
  std::vector<mars::index::RecordId> out;
  int64_t total_io = 0;
  for (const mars::geometry::Box2& window : windows) {
    out.clear();
    mars::index::ShardedCoefficientIndex::FanoutProfile profile;
    total_io += index.QueryProfiled(window, 0.5, 1.0, &out, &profile);
    max_accesses.push_back(profile.max_shard_accesses);
  }
  const auto after = index.Stats();
  double hot = 0.0, total = 0.0;
  for (size_t s = 0; s < after.size(); ++s) {
    const int64_t base = s < before.size() ? before[s].node_accesses : 0;
    const double delta =
        static_cast<double>(after[s].node_accesses - base);
    total += delta;
    hot = std::max(hot, delta);
  }
  std::sort(max_accesses.begin(), max_accesses.end());
  SkewPoint point;
  point.hot_share = total > 0.0 ? hot / total : 0.0;
  const size_t p99 =
      std::min(max_accesses.size() - 1, max_accesses.size() * 99 / 100);
  point.p99_max = static_cast<double>(max_accesses[p99]);
  point.mean_io =
      static_cast<double>(total_io) / static_cast<double>(windows.size());
  return point;
}

}  // namespace

int main() {
  using namespace mars;  // NOLINT

  const bool smoke = bench::SmokeMode();
  workload::SceneOptions scene =
      workload::SceneForDatasetSize(smoke ? 5 : 20);
  const int queries = smoke ? 100 : 300;
  auto db = workload::GenerateScene(scene);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("records: %zu\n", db->records().size());

  struct Variant {
    const char* name;
    index::SplitPolicy policy;
    bool reinsert;
  };
  const std::vector<Variant> variants = {
      {"rstar+reinsert", index::SplitPolicy::kRStar, true},
      {"rstar", index::SplitPolicy::kRStar, false},
      {"guttman", index::SplitPolicy::kGuttmanQuadratic, false},
  };

  double reinsert_cap20_io = 0.0;
  core::PrintTableTitle(
      "Ablation — node accesses per 10% window query (w in [0.5, 1])");
  core::PrintTableHeader({"variant", "cap=10", "cap=20", "cap=40"});
  for (const Variant& v : variants) {
    std::vector<std::string> row = {v.name};
    for (int32_t capacity : {10, 20, 40}) {
      index::RTreeOptions options;
      options.split_policy = v.policy;
      options.forced_reinsert = v.reinsert;
      options.node_capacity = capacity;
      index::SupportRegionIndex idx(options);
      idx.Build(db->records());
      const double io = MeanQueryIo(idx, scene.space, queries);
      if (v.reinsert && capacity == 20) reinsert_cap20_io = io;
      row.push_back(core::Fmt(io, 1));
    }
    core::PrintTableRow(row);
  }

  // --- Shard-count sweep ----------------------------------------------------
  std::vector<bench::BenchMetric> metrics = {
      {"rstar_reinsert_cap20_io", reinsert_cap20_io, false},
  };
  static const char* const kShardIoNames[] = {
      "shards_1_io", "shards_4_io", "shards_16_io"};

  core::PrintTableTitle(
      "Sharded index — per 10% window query (w in [0.5, 1])");
  core::PrintTableHeader(
      {"shards", "accesses", "us (seq)", "us (par x4)"});
  int shard_setting = 0;
  for (int32_t shards : {1, 4, 16}) {
    index::ShardedIndexOptions options;
    options.shards = shards;
    index::ShardedCoefficientIndex sequential(options);
    sequential.Build(db->records());
    const double io = MeanQueryIo(sequential, scene.space, queries);
    const double us_seq = MeanQueryMicros(sequential, scene.space, queries);

    options.fanout_workers = 4;
    index::ShardedCoefficientIndex parallel(options);
    parallel.Build(db->records());
    const double us_par = MeanQueryMicros(parallel, scene.space, queries);

    core::PrintTableRow({std::to_string(shards), core::Fmt(io, 1),
                         core::Fmt(us_seq, 1), core::Fmt(us_par, 1)});
    metrics.push_back({kShardIoNames[shard_setting++], io, false});
  }

  // --- Load-adaptive rebalancing under a Zipf-skewed scene ------------------
  constexpr int32_t kSkewShards = 8;
  const int skew_queries = smoke ? 400 : 1500;

  auto build_index = [](const std::vector<index::CoeffRecord>& records) {
    index::ShardedIndexOptions options;
    options.shards = kSkewShards;
    auto idx = std::make_unique<index::ShardedCoefficientIndex>(options);
    idx->Build(records);
    return idx;
  };

  // Fair-load reference: uniform scene, record-following query stream.
  const auto uniform_windows =
      RecordWindows(db->records(), scene.space, skew_queries, 21);
  auto uniform_index = build_index(db->records());
  const SkewPoint uniform_point =
      MeasureSkew(*uniform_index, uniform_windows);

  // The hot-spot workload: the same dataset size, Zipf-clustered.
  workload::SceneOptions zipf_scene = scene;
  zipf_scene.placement = workload::Placement::kZipf;
  // A tight, strongly-ranked cluster set: the paper's hot-spot shape,
  // dense enough that one base-grid cell owns most of the record mass.
  zipf_scene.zipf_clusters = 4;
  zipf_scene.cluster_spread = 150.0;
  auto zipf_db = workload::GenerateScene(zipf_scene);
  if (!zipf_db.ok()) {
    std::fprintf(stderr, "%s\n", zipf_db.status().ToString().c_str());
    return 1;
  }
  const auto zipf_windows =
      RecordWindows(zipf_db->records(), zipf_scene.space, skew_queries, 21);

  auto static_index = build_index(zipf_db->records());
  const SkewPoint static_point = MeasureSkew(*static_index, zipf_windows);

  // Rebalanced setting: warm the policy up on the same stream (the
  // serial-phase tick cadence of a real run), then measure steady state.
  auto rebalanced_index = build_index(zipf_db->records());
  server::RebalanceOptions policy;
  policy.enabled = true;
  policy.interval = 1;
  policy.split_factor = 1.5;
  policy.merge_factor = 0.1;
  policy.min_split_records = 64;
  policy.max_shards = smoke ? 32 : 128;
  server::ShardRebalancer rebalancer(rebalanced_index.get(), policy);
  rebalancer.Tick();  // install the baseline window
  {
    std::vector<index::RecordId> out;
    const int rounds = smoke ? 24 : 140;
    const size_t per_round = zipf_windows.size() / rounds + 1;
    size_t next = 0;
    for (int round = 0; round < rounds; ++round) {
      for (size_t q = 0; q < per_round; ++q) {
        out.clear();
        rebalanced_index->Query(zipf_windows[next], 0.5, 1.0, &out);
        next = (next + 1) % zipf_windows.size();
      }
      rebalancer.Tick();
    }
  }
  const SkewPoint rebalanced_point =
      MeasureSkew(*rebalanced_index, zipf_windows);

  core::PrintTableTitle(
      "Rebalancing — Zipf hot-spot, K = 8, 5% record-centered windows");
  core::PrintTableHeader(
      {"setting", "hot share", "p99 max-shard", "mean io", "live"});
  core::PrintTableRow({"uniform static", core::Fmt(uniform_point.hot_share, 3),
                       core::Fmt(uniform_point.p99_max, 1),
                       core::Fmt(uniform_point.mean_io, 1),
                       std::to_string(uniform_index->live_shard_count())});
  core::PrintTableRow({"zipf static", core::Fmt(static_point.hot_share, 3),
                       core::Fmt(static_point.p99_max, 1),
                       core::Fmt(static_point.mean_io, 1),
                       std::to_string(static_index->live_shard_count())});
  core::PrintTableRow(
      {"zipf rebalanced", core::Fmt(rebalanced_point.hot_share, 3),
       core::Fmt(rebalanced_point.p99_max, 1),
       core::Fmt(rebalanced_point.mean_io, 1),
       std::to_string(rebalanced_index->live_shard_count())});
  std::printf("rebalance ops: %lld\n",
              static_cast<long long>(rebalanced_index->rebalances()));

  // The acceptance shape. Static sharding leaves the Zipf hot shard
  // dominating with a p99 critical path several times the fair-load
  // reference; the warmed-up rebalancer must pull the hot share down
  // and land the p99 within 1.5x of it.
  MARS_CHECK_GT(rebalanced_index->rebalances(), 0);
  MARS_CHECK_GT(static_point.p99_max, 3.0 * uniform_point.p99_max);
  MARS_CHECK_LT(rebalanced_point.hot_share, static_point.hot_share);
  MARS_CHECK_LE(rebalanced_point.p99_max, 1.5 * uniform_point.p99_max);

  metrics.push_back({"zipf_static_hot_share", static_point.hot_share, false});
  metrics.push_back(
      {"zipf_rebalanced_hot_share", rebalanced_point.hot_share, false});
  metrics.push_back({"zipf_static_p99_io", static_point.p99_max, false});
  metrics.push_back(
      {"zipf_rebalanced_p99_io", rebalanced_point.p99_max, false});

  if (!bench::WriteBenchJson("ablation_index", metrics)) return 1;
  return 0;
}
