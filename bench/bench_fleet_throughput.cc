// Extension experiment: fleet engine parallel throughput.
//
// Runs the same 32-client mixed fleet (streaming / buffered / naive,
// alternating tram and pedestrian tours) at 1, 2, 4 and 8 workers and
// reports the wall-clock time of the whole simulation plus the speedup
// over the serial run. The engine's two-phase tick loop keeps every
// cross-client effect in a serial, client-id-ordered commit phase, so the
// aggregate metrics must be byte-identical at every worker count — the
// bench verifies that on the full-precision RunMetrics JSON and fails
// loudly if parallelism changed a single bit.
//
// Expected shape: near-linear speedup while physical cores last (the
// parallel phase — query planning, index walks, wire encoding — dominates
// each tick), flattening at the machine's core count. On a single-core
// container every worker count runs in about the same time; the
// determinism check is the interesting output there.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/experiment.h"
#include "fleet/fleet_engine.h"

namespace {

using namespace mars;  // NOLINT

constexpr double kSpeed = 0.5;

}  // namespace

int main() {
  auto system_or = core::System::Create(bench::DefaultConfig());
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  // CI's bench-smoke preset trades scale for runtime; the determinism
  // check is identical either way.
  const bool smoke = bench::SmokeMode();
  const int32_t kClients = smoke ? 12 : 32;
  const int32_t kFrames = smoke ? 25 : 60;
  const std::vector<int> worker_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

  std::vector<std::vector<std::string>> rows;
  std::string reference_json;
  double serial_seconds = 0.0;
  fleet::FleetResult last;
  for (int workers : worker_counts) {
    fleet::FleetOptions options;
    options.workers = workers;
    fleet::FleetEngine engine(
        system, options,
        fleet::FleetEngine::MakeMixedFleet(kClients, kFrames, kSpeed,
                                           /*seed=*/0));
    const auto start = std::chrono::steady_clock::now();
    const fleet::FleetResult result = engine.Run();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    const std::string json = core::RunMetricsJson(result.aggregate);
    if (workers == 1) {
      reference_json = json;
      serial_seconds = wall;
    } else if (json != reference_json) {
      std::fprintf(stderr,
                   "FATAL: aggregate metrics diverged at workers=%d\n"
                   "  workers=1: %s\n  workers=%d: %s\n",
                   workers, reference_json.c_str(), workers, json.c_str());
      return 1;
    }

    rows.push_back(
        {std::to_string(workers), core::Fmt(wall, 3),
         core::Fmt(serial_seconds / wall, 2),
         core::Fmt(result.aggregate.MeanResponsePerExchange(), 3),
         std::to_string(result.hot_hits),
         core::FmtBytes(result.hot_bytes_saved)});
    last = result;
  }

  core::PrintTableTitle(
      "Fleet throughput — 32 mixed clients, wall clock vs workers");
  core::PrintTableHeader({"workers", "wall s", "speedup", "resp/query",
                          "hot hits", "hot saved"});
  for (const auto& row : rows) core::PrintTableRow(row);
  std::printf("aggregate metrics identical at all worker counts\n");

  std::printf("\n-- json --\n");
  for (const auto& row : rows) {
    std::printf("%s\n", core::TableRowJson(row).c_str());
  }

  // Gated metrics: deterministic simulated quantities only (wall clock
  // would make the CI gate flake on runner speed).
  const double hot_lookups =
      static_cast<double>(last.hot_hits + last.hot_misses);
  if (!bench::WriteBenchJson(
          "fleet_throughput",
          {{"resp_per_exchange_seconds",
            last.aggregate.MeanResponsePerExchange(), false},
           {"p99_response_seconds", last.aggregate.P99ResponseSeconds(),
            false},
           {"virtual_seconds", last.virtual_seconds, false},
           {"hot_hit_rate",
            hot_lookups > 0.0 ? static_cast<double>(last.hot_hits) /
                                    hot_lookups
                              : 0.0,
            true}})) {
    return 1;
  }
  return 0;
}
