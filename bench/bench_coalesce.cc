// Extension experiment: cross-client request coalescing on the shared
// cell (server inflight table + single-copy delivery).
//
// Co-located fleets — tour groups riding the same seeded trajectory, the
// "tour bus" workload — request largely identical record sets each frame.
// Without coalescing every member pays for its own copy on the cell and
// the server encodes the same records once per requester. With the
// inflight table (server/inflight_table.h) the first requester carries
// the payload, followers attach for a small per-carrier header, and each
// tick's overlapping cache misses are encoded exactly once.
//
// The bench runs uniform and Zipf scenes at fleet sizes 8 and 32, off vs
// on, and reports the encode-work and cell-byte reductions. It fails
// loudly if:
//
//   * coalescing changes *what* is delivered (aggregate demand bytes or
//     records must match the off run bit for bit),
//   * the coalesced run diverges between workers=1 and workers=8 (the
//     two-phase discipline must keep shared-cell accounting
//     deterministic), or
//   * at 32 co-located clients the encode-work reduction is < 2x or the
//     cell-byte reduction is < 1.5x (the perf targets this PR exists
//     for).
//
// CI runs this with MARS_BENCH_SMOKE=1 / MARS_BENCH_JSON=<path>; the
// emitted metrics are deterministic simulated quantities, gated against
// bench/baselines/ by tools/bench_gate.py.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/experiment.h"
#include "fleet/fleet_engine.h"
#include "workload/scene.h"

namespace {

using namespace mars;  // NOLINT

// Co-located fleet: clients i with the same i % 4 share a tour seed and
// kind, so a 32-client fleet is four "tour buses" of eight co-riders
// each requesting near-identical windows every frame.
std::vector<fleet::ClientSpec> MakeCoLocatedFleet(int32_t n,
                                                  int32_t frames) {
  std::vector<fleet::ClientSpec> specs;
  specs.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    fleet::ClientSpec spec;
    spec.id = i;
    spec.kind = (i % 2 == 0) ? fleet::ClientKind::kStreaming
                             : fleet::ClientKind::kBuffered;
    spec.tour_kind = (i % 4 < 2) ? workload::TourKind::kTram
                                 : workload::TourKind::kPedestrian;
    spec.frames = frames;
    spec.seed = 100 + static_cast<uint64_t>(i);
    spec.tour_seed = 900 + static_cast<uint64_t>(i % 4);
    spec.query_fraction = 0.08;
    specs.push_back(spec);
  }
  return specs;
}

fleet::FleetOptions MakeOptions(bool coalesce, int workers) {
  fleet::FleetOptions options;
  options.workers = workers;
  options.coalesce.enabled = coalesce;
  return options;
}

struct RunStats {
  int64_t encode_calls = 0;
  int64_t cell_bytes = 0;
  int64_t coalesce_hits = 0;
  int64_t bytes_saved = 0;
  int64_t demand_bytes = 0;
  int64_t records = 0;
  std::string aggregate_json;
};

RunStats RunFleet(core::System& system, int32_t n, int32_t frames,
                  bool coalesce, int workers) {
  fleet::FleetEngine engine(system, MakeOptions(coalesce, workers),
                            MakeCoLocatedFleet(n, frames));
  const fleet::FleetResult result = engine.Run();
  RunStats stats;
  stats.encode_calls = result.encode_calls;
  stats.cell_bytes = result.cell_bytes;
  stats.coalesce_hits = result.coalesce_hits;
  stats.bytes_saved = result.coalesce_bytes_saved;
  stats.demand_bytes = result.aggregate.demand_bytes;
  stats.records = result.aggregate.records_delivered;
  stats.aggregate_json = core::RunMetricsJson(result.aggregate);
  return stats;
}

double Ratio(int64_t off, int64_t on) {
  return on > 0 ? static_cast<double>(off) / static_cast<double>(on) : 0.0;
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const int32_t frames = smoke ? 12 : 40;

  struct Scene {
    const char* label;
    workload::Placement placement;
  };
  const Scene kScenes[] = {
      {"uniform", workload::Placement::kUniform},
      {"zipf", workload::Placement::kZipf},
  };
  const int32_t kFleets[] = {8, 32};

  double encode_reduction_u32 = 0.0;
  double cell_reduction_u32 = 0.0;
  double encode_reduction_z32 = 0.0;
  double cell_reduction_z32 = 0.0;
  int64_t coalesce_hits_u32 = 0;
  int64_t bytes_saved_u32 = 0;
  bool thresholds_ok = true;
  std::vector<std::vector<std::string>> rows;

  for (const Scene& scene : kScenes) {
    // The full 60 MB scene in both modes: shrinking it starves the Zipf
    // tours of data and degenerates the coalescing ratios; smoke saves
    // its time on the frame count instead.
    core::System::Config config = bench::DefaultConfig();
    config.scene.placement = scene.placement;
    auto system_or = core::System::Create(config);
    if (!system_or.ok()) {
      std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
      return 1;
    }
    core::System& system = **system_or;

    for (const int32_t n : kFleets) {
      const RunStats off = RunFleet(system, n, frames, false, 8);
      const RunStats on = RunFleet(system, n, frames, true, 8);

      // Coalescing must change how bytes are carried, never what the
      // clients receive.
      if (off.demand_bytes != on.demand_bytes || off.records != on.records) {
        std::fprintf(stderr,
                     "FATAL: %s n=%d delivery changed under coalescing "
                     "(demand %lld->%lld bytes, records %lld->%lld)\n",
                     scene.label, n, static_cast<long long>(off.demand_bytes),
                     static_cast<long long>(on.demand_bytes),
                     static_cast<long long>(off.records),
                     static_cast<long long>(on.records));
        return 1;
      }

      // Determinism: the coalesced serial replay must match bit for bit.
      const RunStats serial = RunFleet(system, n, frames, true, 1);
      if (serial.aggregate_json != on.aggregate_json ||
          serial.cell_bytes != on.cell_bytes ||
          serial.encode_calls != on.encode_calls ||
          serial.coalesce_hits != on.coalesce_hits) {
        std::fprintf(stderr,
                     "FATAL: %s n=%d coalesced run diverged between "
                     "workers=8 and workers=1\n",
                     scene.label, n);
        return 1;
      }

      const double encode_ratio = Ratio(off.encode_calls, on.encode_calls);
      const double cell_ratio = Ratio(off.cell_bytes, on.cell_bytes);
      rows.push_back({scene.label, std::to_string(n),
                      std::to_string(off.encode_calls),
                      std::to_string(on.encode_calls),
                      core::Fmt(encode_ratio, 2),
                      core::Fmt(off.cell_bytes / 1.0e6, 2),
                      core::Fmt(on.cell_bytes / 1.0e6, 2),
                      core::Fmt(cell_ratio, 2),
                      std::to_string(on.coalesce_hits)});

      if (n == 32) {
        if (scene.placement == workload::Placement::kUniform) {
          encode_reduction_u32 = encode_ratio;
          cell_reduction_u32 = cell_ratio;
          coalesce_hits_u32 = on.coalesce_hits;
          bytes_saved_u32 = on.bytes_saved;
        } else {
          encode_reduction_z32 = encode_ratio;
          cell_reduction_z32 = cell_ratio;
        }
        if (encode_ratio < 2.0 || cell_ratio < 1.5) {
          std::fprintf(stderr,
                       "FATAL: %s n=32 coalescing reduced encode work "
                       "%.2fx (need >= 2x) and cell bytes %.2fx (need "
                       ">= 1.5x)\n",
                       scene.label, encode_ratio, cell_ratio);
          thresholds_ok = false;
        }
      }
    }
  }

  core::PrintTableTitle(
      "Request coalescing — co-located fleets, off vs on (workers 8)");
  core::PrintTableHeader({"scene", "clients", "encodes off", "encodes on",
                          "encode x", "cell MB off", "cell MB on", "cell x",
                          "hits"});
  for (const auto& row : rows) core::PrintTableRow(row);
  std::printf(
      "coalesced runs identical at workers 1 and 8; delivery identical "
      "off vs on\n");

  std::printf("\n-- json --\n");
  for (const auto& row : rows) {
    std::printf("%s\n", core::TableRowJson(row).c_str());
  }

  if (!bench::WriteBenchJson(
          "coalesce",
          {{"encode_reduction_u32", encode_reduction_u32, true},
           {"cell_reduction_u32", cell_reduction_u32, true},
           {"encode_reduction_z32", encode_reduction_z32, true},
           {"cell_reduction_z32", cell_reduction_z32, true},
           {"coalesce_hits_u32", static_cast<double>(coalesce_hits_u32),
            true},
           {"bytes_saved_u32", static_cast<double>(bytes_saved_u32),
            true}})) {
    return 1;
  }

  return thresholds_ok ? 0 : 1;
}
