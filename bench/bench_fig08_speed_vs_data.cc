// Reproduces Fig. 8 of the paper: "Effect of speed on data retrieval".
//
// Clients travel the same distance at different normalized speeds over the
// default 60 MB scene (10% query frames), using the motion-aware
// multiresolution streaming client (Sec. IV). The series reports the
// average data volume retrieved per tour for tram and pedestrian tours.
// Expected shape: retrieved data falls steeply (roughly an order of
// magnitude or more) as speed rises from 0.001 to 1.0.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/units.h"
#include "core/experiment.h"

int main() {
  using namespace mars;  // NOLINT

  auto system_or = core::System::Create(bench::DefaultConfig());
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;
  std::printf("dataset: %s, %d objects\n",
              common::FormatBytes(system.db().total_bytes()).c_str(),
              system.db().object_count());

  constexpr double kTourDistance = 3000.0;  // meters, equal for all speeds

  core::PrintTableTitle(
      "Fig. 8 — data retrieved (MB per tour) vs speed, equal distance");
  core::PrintTableHeader({"speed", "tram (MB)", "walk (MB)"});
  for (double speed : core::StandardSpeeds()) {
    double mb[2];
    int i = 0;
    for (auto kind :
         {workload::TourKind::kTram, workload::TourKind::kPedestrian}) {
      const auto tours =
          bench::MakeTours(kind, speed, bench::kDefaultTours, 0,
                           kTourDistance, system.space());
      const core::RunMetrics metrics = bench::AverageStreaming(
          system, tours, client::StreamingClient::Options());
      mb[i++] = static_cast<double>(metrics.demand_bytes) / (1024.0 * 1024.0);
    }
    core::PrintTableRow({core::Fmt(speed, 3), core::Fmt(mb[0], 3),
                         core::Fmt(mb[1], 3)});
  }
  return 0;
}
