#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

namespace mars::bench {

std::vector<std::vector<workload::TourPoint>> MakeTours(
    workload::TourKind kind, double speed, int count, int32_t frames,
    double distance, const geometry::Box2& space, bool scheduled_stops) {
  std::vector<std::vector<workload::TourPoint>> tours;
  tours.reserve(count);
  for (int i = 0; i < count; ++i) {
    workload::TourOptions options;
    options.kind = kind;
    options.space = space;
    options.target_speed = speed;
    options.frames = frames;
    options.distance = distance;
    // When speed is the controlled variable, scheduled tram stops would
    // pin part of each tour to speed ~0 regardless of the setting.
    if (!scheduled_stops) options.tram_stop_frames = 0;
    options.seed = 1000 + 17 * static_cast<uint64_t>(i);
    tours.push_back(workload::GenerateTour(options));
  }
  return tours;
}

core::RunMetrics AverageStreaming(
    core::System& system,
    const std::vector<std::vector<workload::TourPoint>>& tours,
    const client::StreamingClient::Options& options) {
  std::vector<core::RunMetrics> runs;
  runs.reserve(tours.size());
  for (const auto& tour : tours) {
    runs.push_back(system.RunStreaming(tour, options));
  }
  return core::MeanOf(runs);
}

core::RunMetrics AverageBuffered(
    core::System& system,
    const std::vector<std::vector<workload::TourPoint>>& tours,
    const client::BufferedClient::Options& options) {
  std::vector<core::RunMetrics> runs;
  runs.reserve(tours.size());
  for (const auto& tour : tours) {
    runs.push_back(system.RunBuffered(tour, options));
  }
  return core::MeanOf(runs);
}

core::RunMetrics AverageNaiveObject(
    core::System& system,
    const std::vector<std::vector<workload::TourPoint>>& tours,
    const client::NaiveObjectClient::Options& options) {
  std::vector<core::RunMetrics> runs;
  runs.reserve(tours.size());
  for (const auto& tour : tours) {
    runs.push_back(system.RunNaiveObject(tour, options));
  }
  return core::MeanOf(runs);
}

core::System::Config DefaultConfig() {
  core::System::Config config;  // scene defaults: 300 objects ≈ 60 MB
  return config;
}

const char* TourKindName(workload::TourKind kind) {
  return kind == workload::TourKind::kTram ? "tram" : "walk";
}

bool SmokeMode() {
  const char* value = std::getenv("MARS_BENCH_SMOKE");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

bool WriteBenchJson(const char* bench_name,
                    const std::vector<BenchMetric>& metrics) {
  const char* path = std::getenv("MARS_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return true;
  std::FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench json: cannot open %s\n", path);
    return false;
  }
  std::fprintf(file, "{\n  \"bench\": \"%s\",\n  \"metrics\": {",
               bench_name);
  for (size_t i = 0; i < metrics.size(); ++i) {
    // %.17g round-trips doubles exactly, matching RunMetricsJson.
    std::fprintf(file,
                 "%s\n    \"%s\": {\"value\": %.17g, "
                 "\"higher_is_better\": %s}",
                 i == 0 ? "" : ",", metrics[i].name, metrics[i].value,
                 metrics[i].higher_is_better ? "true" : "false");
  }
  std::fprintf(file, "\n  }\n}\n");
  std::fclose(file);
  std::printf("bench json written to %s\n", path);
  return true;
}

}  // namespace mars::bench
