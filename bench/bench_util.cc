#include "bench/bench_util.h"

namespace mars::bench {

std::vector<std::vector<workload::TourPoint>> MakeTours(
    workload::TourKind kind, double speed, int count, int32_t frames,
    double distance, const geometry::Box2& space, bool scheduled_stops) {
  std::vector<std::vector<workload::TourPoint>> tours;
  tours.reserve(count);
  for (int i = 0; i < count; ++i) {
    workload::TourOptions options;
    options.kind = kind;
    options.space = space;
    options.target_speed = speed;
    options.frames = frames;
    options.distance = distance;
    // When speed is the controlled variable, scheduled tram stops would
    // pin part of each tour to speed ~0 regardless of the setting.
    if (!scheduled_stops) options.tram_stop_frames = 0;
    options.seed = 1000 + 17 * static_cast<uint64_t>(i);
    tours.push_back(workload::GenerateTour(options));
  }
  return tours;
}

core::RunMetrics AverageStreaming(
    core::System& system,
    const std::vector<std::vector<workload::TourPoint>>& tours,
    const client::StreamingClient::Options& options) {
  std::vector<core::RunMetrics> runs;
  runs.reserve(tours.size());
  for (const auto& tour : tours) {
    runs.push_back(system.RunStreaming(tour, options));
  }
  return core::MeanOf(runs);
}

core::RunMetrics AverageBuffered(
    core::System& system,
    const std::vector<std::vector<workload::TourPoint>>& tours,
    const client::BufferedClient::Options& options) {
  std::vector<core::RunMetrics> runs;
  runs.reserve(tours.size());
  for (const auto& tour : tours) {
    runs.push_back(system.RunBuffered(tour, options));
  }
  return core::MeanOf(runs);
}

core::RunMetrics AverageNaiveObject(
    core::System& system,
    const std::vector<std::vector<workload::TourPoint>>& tours,
    const client::NaiveObjectClient::Options& options) {
  std::vector<core::RunMetrics> runs;
  runs.reserve(tours.size());
  for (const auto& tour : tours) {
    runs.push_back(system.RunNaiveObject(tour, options));
  }
  return core::MeanOf(runs);
}

core::System::Config DefaultConfig() {
  core::System::Config config;  // scene defaults: 300 objects ≈ 60 MB
  return config;
}

const char* TourKindName(workload::TourKind kind) {
  return kind == workload::TourKind::kTram ? "tram" : "walk";
}

}  // namespace mars::bench
