// Microbenchmarks (google-benchmark) for the hot building blocks: R*-tree
// insert/query at the experimental node parameters, wavelet analysis and
// synthesis, window-difference decomposition, Kalman/RLS prediction, and
// the Eq.-2 buffer allocator. These are not paper figures; they document
// the substrate costs behind the figure benches.

#include <benchmark/benchmark.h>

#include "buffer/sector_allocator.h"
#include "client/continuous.h"
#include "common/rng.h"
#include "geometry/rect_diff.h"
#include "index/rtree.h"
#include "mesh/primitives.h"
#include "mesh/subdivide.h"
#include "motion/predictor.h"
#include "wavelet/decompose.h"
#include "wavelet/reconstruct.h"

namespace mars {
namespace {

geometry::Box3 RandomBox3(common::Rng& rng) {
  const double x = rng.Uniform(0, 10000), y = rng.Uniform(0, 10000);
  const double w = rng.UniformDouble();
  return geometry::Box3({x, y, w}, {x + rng.Uniform(1, 40),
                                    y + rng.Uniform(1, 40), w});
}

void BM_RTreeInsert(benchmark::State& state) {
  common::Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    index::RTree3 tree;
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      tree.Insert(RandomBox3(rng), i);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

void BM_RTreeWindowQuery(benchmark::State& state) {
  common::Rng rng(2);
  index::RTree3 tree;
  for (int64_t i = 0; i < state.range(0); ++i) {
    tree.Insert(RandomBox3(rng), i);
  }
  std::vector<int64_t> out;
  for (auto _ : state) {
    out.clear();
    const double x = rng.Uniform(0, 9000), y = rng.Uniform(0, 9000);
    tree.Query(geometry::Box3({x, y, 0.5}, {x + 1000, y + 1000, 1.0}), &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeWindowQuery)->Arg(10000)->Arg(100000);

void BM_GuttmanInsert(benchmark::State& state) {
  common::Rng rng(3);
  index::RTreeOptions options;
  options.split_policy = index::SplitPolicy::kGuttmanQuadratic;
  options.forced_reinsert = false;
  for (auto _ : state) {
    state.PauseTiming();
    index::RTree3 tree(options);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      tree.Insert(RandomBox3(rng), i);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GuttmanInsert)->Arg(10000);

void BM_WaveletDecompose(benchmark::State& state) {
  const int levels = static_cast<int>(state.range(0));
  const mesh::Mesh base = mesh::MakeBuilding(30, 40, 20, 6);
  common::Rng rng(4);
  mesh::Mesh fine = base;
  for (int j = 0; j < levels; ++j) {
    mesh::Subdivision sub = mesh::Subdivide(fine);
    for (const mesh::OddVertex& odd : sub.odd_vertices) {
      sub.mesh.mutable_vertex(odd.vertex) +=
          geometry::Vec3{rng.Normal(), rng.Normal(), rng.Normal()} * 0.3;
    }
    fine = std::move(sub.mesh);
  }
  for (auto _ : state) {
    auto mr = wavelet::Decompose(fine, base, levels);
    benchmark::DoNotOptimize(mr);
  }
}
BENCHMARK(BM_WaveletDecompose)->Arg(2)->Arg(4);

void BM_WaveletReconstruct(benchmark::State& state) {
  const int levels = 4;
  const mesh::Mesh base = mesh::MakeBuilding(30, 40, 20, 6);
  common::Rng rng(5);
  mesh::Mesh fine = base;
  for (int j = 0; j < levels; ++j) {
    mesh::Subdivision sub = mesh::Subdivide(fine);
    for (const mesh::OddVertex& odd : sub.odd_vertices) {
      sub.mesh.mutable_vertex(odd.vertex) +=
          geometry::Vec3{rng.Normal(), rng.Normal(), rng.Normal()} * 0.3;
    }
    fine = std::move(sub.mesh);
  }
  auto mr = wavelet::Decompose(fine, base, levels);
  const double w_min = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto mesh = wavelet::Reconstruct(*mr, w_min);
    benchmark::DoNotOptimize(mesh);
  }
}
BENCHMARK(BM_WaveletReconstruct)->Arg(0)->Arg(50)->Arg(100);

void BM_WindowDifference(benchmark::State& state) {
  common::Rng rng(6);
  for (auto _ : state) {
    const double x = rng.Uniform(0, 100), y = rng.Uniform(0, 100);
    const auto a = geometry::MakeBox2(x, y, x + 50, y + 50);
    const auto b = geometry::MakeBox2(x + 5, y + 7, x + 55, y + 57);
    auto pieces = geometry::Difference(a, b);
    benchmark::DoNotOptimize(pieces);
  }
}
BENCHMARK(BM_WindowDifference);

void BM_ContinuousPlan(benchmark::State& state) {
  common::Rng rng(7);
  for (auto _ : state) {
    const double x = rng.Uniform(0, 100), y = rng.Uniform(0, 100);
    const auto prev = geometry::MakeBox2(x, y, x + 50, y + 50);
    const auto cur = geometry::MakeBox2(x + 3, y + 2, x + 53, y + 52);
    auto plan = client::PlanContinuousRetrieval(cur, 0.3, prev, 0.6);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ContinuousPlan);

void BM_PredictorObserve(benchmark::State& state) {
  motion::MotionPredictor predictor;
  common::Rng rng(8);
  double x = 0, y = 0;
  for (auto _ : state) {
    x += rng.Uniform(4, 6);
    y += rng.Uniform(-1, 1);
    predictor.Observe({x, y});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictorObserve);

void BM_PredictorPredict(benchmark::State& state) {
  motion::MotionPredictor predictor;
  for (int t = 0; t < 100; ++t) {
    predictor.Observe({5.0 * t, 2.0 * t});
  }
  for (auto _ : state) {
    auto p = predictor.Predict(static_cast<int32_t>(state.range(0)));
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PredictorPredict)->Arg(1)->Arg(8)->Arg(16);

void BM_BufferAllocation(benchmark::State& state) {
  const std::vector<double> probs = {0.4, 0.25, 0.2, 0.15};
  for (auto _ : state) {
    auto alloc = buffer::AllocateBuffer(probs, 64);
    benchmark::DoNotOptimize(alloc);
  }
}
BENCHMARK(BM_BufferAllocation);

}  // namespace
}  // namespace mars

BENCHMARK_MAIN();
