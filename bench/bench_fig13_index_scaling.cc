// Reproduces Fig. 13 of the paper: "Effect of query and data set sizes" on
// index I/O cost at fixed speed 0.5, with the indexing component evaluated
// in isolation (standalone window queries, as in Fig. 12).
//
// (a) Node accesses per window query vs query size (5-20%), 60 MB dataset.
// (b) Node accesses per window query vs dataset size (20-80 MB), 10% frame.
// Expected shapes: costs grow with query and dataset size; the
// motion-aware access method saves on the order of a third of the I/O on
// average (paper: 36%), with the gap widening at the large end of both
// sweeps (paper: up to 49% at 20% queries, 59% at 80 MB).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "client/viewport.h"
#include "core/experiment.h"
#include "index/access.h"
#include "index/sharded_index.h"
#include "workload/scene.h"

namespace {

double MeanIoPerQuery(
    mars::index::CoefficientIndex& index,
    const std::vector<std::vector<mars::workload::TourPoint>>& tours,
    const mars::geometry::Box2& space, double query_fraction) {
  mars::client::Viewport viewport(space, query_fraction, query_fraction);
  index.ResetStats();
  int64_t queries = 0;
  std::vector<mars::index::RecordId> out;
  for (const auto& tour : tours) {
    for (const auto& point : tour) {
      out.clear();
      index.Query(viewport.WindowAt(point.position), point.speed, 1.0,
                  &out);
      ++queries;
    }
  }
  return queries == 0 ? 0.0
                      : static_cast<double>(index.node_accesses()) / queries;
}

}  // namespace

int main() {
  using namespace mars;  // NOLINT

  constexpr double kSpeed = 0.5;
  constexpr int32_t kFrames = 200;

  // --- (a) query-size sweep over the default dataset ----------------------
  {
    const workload::SceneOptions scene = bench::DefaultConfig().scene;
    auto db = workload::GenerateScene(scene);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    index::SupportRegionIndex support;
    index::NaivePointIndex naive;
    support.Build(db->records());
    naive.Build(db->records());
    const auto tours =
        bench::MakeTours(workload::TourKind::kTram, kSpeed,
                         bench::kDefaultTours, kFrames, -1.0, scene.space);

    core::PrintTableTitle(
        "Fig. 13(a) — index I/O per window query vs query size (speed 0.5, "
        "60MB)");
    core::PrintTableHeader({"query", "motion-aware", "naive", "saving"});
    for (double fraction : core::StandardQueryFractions()) {
      const double ma = MeanIoPerQuery(support, tours, scene.space, fraction);
      const double nv = MeanIoPerQuery(naive, tours, scene.space, fraction);
      const double saving = nv > 0 ? 100.0 * (1.0 - ma / nv) : 0.0;
      core::PrintTableRow({core::Fmt(100 * fraction, 0) + "%",
                           core::Fmt(ma, 1), core::Fmt(nv, 1),
                           core::Fmt(saving, 1) + "%"});
    }
  }

  // --- (b) dataset-size sweep at the default 10% frame --------------------
  core::PrintTableTitle(
      "Fig. 13(b) — index I/O per window query vs dataset size (speed 0.5, "
      "10%)");
  core::PrintTableHeader({"dataset", "motion-aware", "naive", "saving"});
  for (int32_t mb : core::StandardDatasetSizesMb()) {
    const workload::SceneOptions scene = workload::SceneForDatasetSize(mb);
    auto db = workload::GenerateScene(scene);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    index::SupportRegionIndex support;
    index::NaivePointIndex naive;
    support.Build(db->records());
    naive.Build(db->records());
    const auto tours =
        bench::MakeTours(workload::TourKind::kTram, kSpeed,
                         bench::kDefaultTours, kFrames, -1.0, scene.space);
    const double ma = MeanIoPerQuery(support, tours, scene.space, 0.1);
    const double nv = MeanIoPerQuery(naive, tours, scene.space, 0.1);
    const double saving = nv > 0 ? 100.0 * (1.0 - ma / nv) : 0.0;
    core::PrintTableRow({std::to_string(mb) + "MB", core::Fmt(ma, 1),
                         core::Fmt(nv, 1), core::Fmt(saving, 1) + "%"});
  }

  // --- (c) shard-count sweep at the default 10% frame ---------------------
  // How partitioning scales with data: per-shard trees get shallower as
  // the dataset grows across a fixed K, while coverage fan-out keeps a
  // window from paying for shards it cannot touch.
  core::PrintTableTitle(
      "Fig. 13(c) — sharded motion-aware index I/O vs dataset size "
      "(speed 0.5, 10%)");
  core::PrintTableHeader({"dataset", "K=1", "K=4", "K=16"});
  for (int32_t mb : {20, 60}) {
    const workload::SceneOptions scene = workload::SceneForDatasetSize(mb);
    auto db = workload::GenerateScene(scene);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    const auto tours =
        bench::MakeTours(workload::TourKind::kTram, kSpeed,
                         bench::kDefaultTours, kFrames, -1.0, scene.space);
    std::vector<std::string> row = {std::to_string(mb) + "MB"};
    for (int32_t shards : {1, 4, 16}) {
      index::ShardedIndexOptions options;
      options.shards = shards;
      index::ShardedCoefficientIndex sharded(options);
      sharded.Build(db->records());
      row.push_back(
          core::Fmt(MeanIoPerQuery(sharded, tours, scene.space, 0.1), 1));
    }
    core::PrintTableRow(row);
  }
  return 0;
}
