// Reproduces Fig. 10 of the paper: "Effect of buffer size" on
// (a) cache hit rate and (b) data utilization, motion-aware vs naive
// buffer management, for tram and pedestrian tours.
//
// Expected shapes: hit rate rises with buffer size; the motion-aware
// scheme's hit rate and utilization beat the naive uniform-ring scheme;
// utilization falls as buffers grow (long-horizon prefetches are less
// certain); tram tours do better than pedestrian tours because they are
// more predictable.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/units.h"
#include "core/experiment.h"

int main() {
  using namespace mars;  // NOLINT

  auto system_or = core::System::Create(bench::DefaultConfig());
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  constexpr int32_t kFrames = 300;
  constexpr double kSpeed = 0.5;

  struct Cell {
    double hit = 0.0;
    double util = 0.0;
  };
  // [kind][scheme][buffer index]
  const auto buffers = core::StandardBufferSizesKb();
  std::vector<std::vector<std::vector<Cell>>> results(
      2, std::vector<std::vector<Cell>>(2, std::vector<Cell>(buffers.size())));

  const workload::TourKind kinds[2] = {workload::TourKind::kTram,
                                       workload::TourKind::kPedestrian};
  for (int ki = 0; ki < 2; ++ki) {
    // Fixed cruise speed with the tours' natural jitter ("the speed of
    // the clients may also slightly vary at different parts of a tour",
    // Sec. VII-C). Full scheduled stops are excluded: a stop demands an
    // instant 500x resolution upgrade of the whole view, which swamps the
    // hit-rate statistic with misses no prefetcher could avoid.
    const auto tours = bench::MakeTours(kinds[ki], kSpeed,
                                        bench::kDefaultTours, kFrames, -1.0,
                                        system.space());
    for (int scheme = 0; scheme < 2; ++scheme) {
      for (size_t bi = 0; bi < buffers.size(); ++bi) {
        client::BufferedClient::Options options;
        options.buffer_bytes = static_cast<int64_t>(buffers[bi]) * 1024;
        options.motion_aware = (scheme == 0);
        const core::RunMetrics metrics =
            bench::AverageBuffered(system, tours, options);
        results[ki][scheme][bi] =
            Cell{metrics.cache_hit_rate, metrics.data_utilization};
      }
    }
  }

  core::PrintTableTitle("Fig. 10(a) — cache hit rate (%) vs buffer size");
  core::PrintTableHeader({"buffer", "tram MA", "tram naive", "walk MA",
                          "walk naive"});
  for (size_t bi = 0; bi < buffers.size(); ++bi) {
    core::PrintTableRow({std::to_string(buffers[bi]) + "K",
                         core::Fmt(100 * results[0][0][bi].hit, 1),
                         core::Fmt(100 * results[0][1][bi].hit, 1),
                         core::Fmt(100 * results[1][0][bi].hit, 1),
                         core::Fmt(100 * results[1][1][bi].hit, 1)});
  }

  core::PrintTableTitle("Fig. 10(b) — data utilization (%) vs buffer size");
  core::PrintTableHeader({"buffer", "tram MA", "tram naive", "walk MA",
                          "walk naive"});
  for (size_t bi = 0; bi < buffers.size(); ++bi) {
    core::PrintTableRow({std::to_string(buffers[bi]) + "K",
                         core::Fmt(100 * results[0][0][bi].util, 1),
                         core::Fmt(100 * results[0][1][bi].util, 1),
                         core::Fmt(100 * results[1][0][bi].util, 1),
                         core::Fmt(100 * results[1][1][bi].util, 1)});
  }
  return 0;
}
