// Extension experiment: fairness isolation on the shared cell.
//
// A small fleet of motion-aware clients (streaming + buffered) shares the
// cell with greedy naive neighbours that request full-resolution objects
// over wide windows — the bulk load the paper's Sec. VII-E baseline
// generates. Under the legacy equal-share discipline the cell divides
// capacity per *transfer*, so a naive client with k queued transfers
// holds k shares and drowns everyone else. Under weighted fair queuing
// the division is per *client*, so the motion-aware class keeps its share
// no matter how deep the bulk backlog grows.
//
// The bench runs the same fleet under both disciplines (and once more
// with admission control on top) and reports the motion-aware class's
// delivery-delay tail. It fails loudly if:
//
//   * WFQ does not improve the motion-aware p99 by at least 3x over
//     equal share (the isolation guarantee this PR exists for), or
//   * aggregate metrics differ between workers=1 and workers=8 (WFQ
//     completions must stay deterministically ordered).
//
// CI runs this with MARS_BENCH_SMOKE=1 / MARS_BENCH_JSON=<path>; the
// emitted metrics are deterministic simulated quantities, gated against
// bench/baselines/ by tools/bench_gate.py.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/experiment.h"
#include "fleet/fleet_engine.h"

namespace {

using namespace mars;  // NOLINT

struct Shape {
  int32_t motion_clients;  // half streaming, half buffered
  int32_t greedy_clients;  // naive bulk
  int32_t frames;
};

// The fleet: `motion_clients` well-behaved members with the paper's
// default windows, plus `greedy_clients` naive members with wide windows
// and tiny local caches, so nearly every frame re-fetches full objects.
std::vector<fleet::ClientSpec> MakeContendedFleet(const Shape& shape) {
  std::vector<fleet::ClientSpec> specs;
  specs.reserve(
      static_cast<size_t>(shape.motion_clients + shape.greedy_clients));
  int32_t id = 0;
  for (int32_t i = 0; i < shape.motion_clients; ++i, ++id) {
    fleet::ClientSpec spec;
    spec.id = id;
    spec.kind = (i % 2 == 0) ? fleet::ClientKind::kStreaming
                             : fleet::ClientKind::kBuffered;
    spec.tour_kind = (i % 2 == 0) ? workload::TourKind::kTram
                                  : workload::TourKind::kPedestrian;
    spec.frames = shape.frames;
    spec.seed = 100 + static_cast<uint64_t>(id);
    spec.tour_seed = 900 + static_cast<uint64_t>(id);
    spec.query_fraction = 0.08;
    specs.push_back(spec);
  }
  for (int32_t i = 0; i < shape.greedy_clients; ++i, ++id) {
    fleet::ClientSpec spec;
    spec.id = id;
    spec.kind = fleet::ClientKind::kNaive;
    spec.tour_kind = workload::TourKind::kTram;
    spec.frames = shape.frames;
    spec.seed = 100 + static_cast<uint64_t>(id);
    spec.tour_seed = 900 + static_cast<uint64_t>(id);
    spec.query_fraction = 0.35;      // wide windows → bulk object fetches
    spec.buffer_bytes = 16 * 1024;   // tiny LRU → constant re-fetching
    specs.push_back(spec);
  }
  return specs;
}

fleet::FleetOptions MakeOptions(net::SharedMediumLink::Discipline discipline,
                                bool admission, int workers) {
  fleet::FleetOptions options;
  options.workers = workers;
  // A starved cell: every greedy transfer backlogs, which is the whole
  // point — isolation only matters under contention.
  options.cell.cell_bandwidth_kbps = 512.0;
  options.cell.client_bandwidth_kbps = 256.0;
  options.cell.discipline = discipline;
  options.admission.enabled = admission;
  return options;
}

// Motion-aware classes merged (streaming + buffered).
core::RunMetrics MotionAware(const fleet::FleetResult& result) {
  core::RunMetrics merged;
  merged.Merge(
      result.by_kind[static_cast<size_t>(fleet::ClientKind::kStreaming)]
          .metrics);
  merged.Merge(
      result.by_kind[static_cast<size_t>(fleet::ClientKind::kBuffered)]
          .metrics);
  return merged;
}

}  // namespace

int main() {
  auto system_or = core::System::Create(bench::DefaultConfig());
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  const bool smoke = bench::SmokeMode();
  const Shape shape = smoke ? Shape{4, 4, 20} : Shape{6, 6, 50};

  struct Row {
    const char* label;
    net::SharedMediumLink::Discipline discipline;
    bool admission;
  };
  const Row kRows[] = {
      {"equal-share", net::SharedMediumLink::Discipline::kEqualShare, false},
      {"wfq", net::SharedMediumLink::Discipline::kWeightedFair, false},
      {"wfq+admission", net::SharedMediumLink::Discipline::kWeightedFair,
       true},
  };

  double equal_p99 = 0.0;
  double wfq_p99 = 0.0;
  double wfq_admission_p99 = 0.0;
  double naive_wfq_p99 = 0.0;
  int64_t deferred = 0;
  int64_t shed = 0;
  std::vector<std::vector<std::string>> rows;
  for (const Row& row : kRows) {
    fleet::FleetEngine engine(system,
                              MakeOptions(row.discipline, row.admission, 8),
                              MakeContendedFleet(shape));
    const fleet::FleetResult result = engine.Run();

    // Determinism check: the serial replay must match bit for bit.
    fleet::FleetEngine replay(system,
                              MakeOptions(row.discipline, row.admission, 1),
                              MakeContendedFleet(shape));
    const fleet::FleetResult serial = replay.Run();
    if (core::RunMetricsJson(serial.aggregate) !=
        core::RunMetricsJson(result.aggregate)) {
      std::fprintf(stderr,
                   "FATAL: %s metrics diverged between workers=8 and "
                   "workers=1\n",
                   row.label);
      return 1;
    }

    const core::RunMetrics motion = MotionAware(result);
    const core::RunMetrics& naive =
        result.by_kind[static_cast<size_t>(fleet::ClientKind::kNaive)]
            .metrics;
    if (row.discipline == net::SharedMediumLink::Discipline::kEqualShare) {
      equal_p99 = motion.P99ResponseSeconds();
    } else if (!row.admission) {
      wfq_p99 = motion.P99ResponseSeconds();
      naive_wfq_p99 = naive.P99ResponseSeconds();
    } else {
      wfq_admission_p99 = motion.P99ResponseSeconds();
      deferred = result.deferred_exchanges;
      shed = result.shed_exchanges;
    }
    rows.push_back({row.label, core::Fmt(motion.P50ResponseSeconds(), 3),
                    core::Fmt(motion.P99ResponseSeconds(), 3),
                    core::Fmt(naive.P99ResponseSeconds(), 3),
                    std::to_string(result.deferred_exchanges),
                    std::to_string(result.shed_exchanges)});
  }

  core::PrintTableTitle(
      "Fairness isolation — motion-aware tail vs greedy naive neighbours");
  core::PrintTableHeader({"discipline", "motion p50 s", "motion p99 s",
                          "naive p99 s", "deferred", "shed"});
  for (const auto& row : rows) core::PrintTableRow(row);

  const double gain = wfq_p99 > 0.0 ? equal_p99 / wfq_p99 : 0.0;
  std::printf(
      "motion-aware p99: equal-share %.3fs vs wfq %.3fs → %.1fx better\n",
      equal_p99, wfq_p99, gain);
  std::printf("aggregate metrics identical at workers 1 and 8\n");

  std::printf("\n-- json --\n");
  for (const auto& row : rows) {
    std::printf("%s\n", core::TableRowJson(row).c_str());
  }

  if (!bench::WriteBenchJson(
          "fairness_isolation",
          {{"motion_p99_equal_seconds", equal_p99, false},
           {"motion_p99_wfq_seconds", wfq_p99, false},
           {"motion_p99_wfq_admission_seconds", wfq_admission_p99, false},
           {"naive_p99_wfq_seconds", naive_wfq_p99, false},
           {"isolation_gain", gain, true},
           {"deferred_exchanges", static_cast<double>(deferred), false},
           {"shed_exchanges", static_cast<double>(shed), false}})) {
    return 1;
  }

  if (gain < 3.0) {
    std::fprintf(stderr,
                 "FATAL: WFQ improved motion-aware p99 only %.2fx over "
                 "equal share (need >= 3x)\n",
                 gain);
    return 1;
  }
  return 0;
}
