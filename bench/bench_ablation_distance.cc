// Ablation: distance-aware resolution rings (DESIGN.md Sec. 4 /
// paper Sec. III's remark that geometric influence also depends on screen
// resolution — distant objects subtend few pixels).
//
// Splits the query window into concentric rings with resolution coarsening
// away from the client, and measures the bytes per window query against
// the flat single-band query, for several ring counts, at several speeds,
// on the default 60 MB scene. Expected shape: large savings at low speeds
// (where the flat query fetches full detail everywhere) shrinking to
// nothing at speed 1.0 (where everything is coarse anyway).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "client/distance_rings.h"
#include "client/viewport.h"
#include "core/experiment.h"
#include "server/server.h"

int main() {
  using namespace mars;  // NOLINT

  auto system_or = core::System::Create(bench::DefaultConfig());
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;
  const client::Viewport viewport(system.space(), 0.1, 0.1);

  core::PrintTableTitle(
      "Ablation — KB per window query: flat band vs distance rings");
  core::PrintTableHeader({"speed", "flat", "rings=2", "rings=3", "rings=5"});
  for (double speed : core::StandardSpeeds()) {
    const auto tours =
        bench::MakeTours(workload::TourKind::kTram, speed, 3, 60, -1.0,
                         system.space());
    std::vector<std::string> row = {core::Fmt(speed, 3)};
    for (int32_t rings : {1, 2, 3, 5}) {
      client::DistanceRingOptions options;
      options.rings = rings;
      int64_t bytes = 0;
      int64_t queries = 0;
      for (const auto& tour : tours) {
        for (const auto& point : tour) {
          server::ClientSession session;  // standalone queries
          const auto plan = client::PlanDistanceRings(
              viewport.WindowAt(point.position), point.position,
              point.speed, options);
          const auto result = system.server().Execute(plan, &session);
          bytes += result.response_bytes;
          ++queries;
        }
      }
      row.push_back(core::Fmt(
          static_cast<double>(bytes) / queries / 1024.0, 1));
    }
    core::PrintTableRow(row);
  }
  return 0;
}
