// Fault-tolerant handover on the multi-cell topology: what a whole-cell
// outage costs the fleet, and what it costs the *bystanders*.
//
// A 12-client mixed fleet roams a 20 MB scene tiled into four cells.
// Run A is fault-free. Run B kills the most-populated home cell for a
// 60 s window mid-run: its clients fail over to the nearest healthy
// neighbour, their in-flight transfers are cancelled and re-issued
// there, and the refugees then compete with the neighbour's natives for
// cell capacity.
//
// The bench reports the per-class damage and fails loudly if:
//
//   * a client homed on the dead cell never fails over (the outage
//     window must actually be covered),
//   * clients that never touched the dead cell keep less than 90 % of
//     their fault-free goodput (refugee load must degrade bystanders
//     gracefully — WFQ bounds the spillover), or
//   * run B diverges between workers=1 and workers=8 (failover,
//     cancellation, and re-issue must stay deterministic).
//
// CI runs this with MARS_BENCH_SMOKE=1 / MARS_BENCH_JSON=<path>; the
// emitted metrics are deterministic simulated quantities, gated against
// bench/baselines/handover.json by tools/bench_gate.py.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/experiment.h"
#include "fleet/fleet_engine.h"
#include "workload/scene.h"

namespace {

using namespace mars;  // NOLINT

std::vector<fleet::ClientSpec> RoamingFleet(int32_t n, int32_t frames) {
  auto specs =
      fleet::FleetEngine::MakeMixedFleet(n, frames, /*speed=*/0.9, /*seed=*/7);
  for (fleet::ClientSpec& spec : specs) spec.query_fraction = 0.1;
  return specs;
}

fleet::FleetResult RunFleet(core::System& system, int32_t frames,
                            int workers, int32_t dead_cell,
                            double outage_start, double outage_seconds) {
  fleet::FleetOptions options;
  options.workers = workers;
  options.cells = 4;
  // Tight cells so the outage catches transfers in flight and the
  // refugees actually contend with the natives.
  options.cell.cell_bandwidth_kbps = 1024.0;
  options.cell.client_bandwidth_kbps = 256.0;
  if (dead_cell >= 0) {
    options.cell_outages.push_back({dead_cell, outage_start, outage_seconds});
  }
  fleet::FleetEngine engine(system, options, RoamingFleet(12, frames));
  return engine.Run();
}

// Topology + chaos accounting appended to the aggregate metrics, so the
// workers-1-vs-8 comparison covers the fault machinery too.
std::string ReplayJson(const fleet::FleetResult& result) {
  std::string out = core::RunMetricsJson(result.aggregate);
  out += ";" + std::to_string(result.handovers) + "/" +
         std::to_string(result.failovers) + "/" +
         std::to_string(result.reissued_transfers) + "/" +
         std::to_string(result.reissued_bytes);
  for (const fleet::ClientResult& client : result.clients) {
    out += ";" + std::to_string(client.final_cell) + "/" +
           std::to_string(client.handovers) + "/" +
           std::to_string(client.failovers) + "/" +
           std::to_string(client.cell_bytes);
  }
  return out;
}

// Delivered bytes per simulated second of delivery delay — the goodput a
// user experiences. Bytes are identical across runs (content never
// depends on the topology), so the ratio is driven by the delay.
double Goodput(const core::RunMetrics& m) {
  const double bytes = static_cast<double>(m.total_bytes());
  return m.total_response_seconds > 0.0 ? bytes / m.total_response_seconds
                                        : 0.0;
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const int32_t frames = smoke ? 60 : 160;
  const double outage_start = 20.0;
  const double outage_seconds = 60.0;

  core::System::Config config;
  config.scene = workload::SceneForDatasetSize(20, 7);
  auto system_or = core::System::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  // Run A (fault-free) fixes the victim: the cell most clients call home.
  const fleet::FleetResult clean = RunFleet(system, frames, 8, -1, 0, 0);
  int64_t population[4] = {0, 0, 0, 0};
  for (const fleet::ClientResult& client : clean.clients) {
    ++population[client.home_cell];
  }
  int32_t dead_cell = 0;
  for (int32_t k = 1; k < 4; ++k) {
    if (population[k] > population[dead_cell]) dead_cell = k;
  }

  // Run B: that cell blacks out mid-run.
  const fleet::FleetResult fault =
      RunFleet(system, frames, 8, dead_cell, outage_start, outage_seconds);

  // Determinism: failover, cancellation, and re-issue replay bit for bit.
  const fleet::FleetResult serial =
      RunFleet(system, frames, 1, dead_cell, outage_start, outage_seconds);
  if (ReplayJson(serial) != ReplayJson(fault)) {
    std::fprintf(stderr,
                 "FATAL: faulted run diverged between workers=8 and "
                 "workers=1\n");
    return 1;
  }

  // Per-class tallies: victims homed on the dead cell vs bystanders that
  // never touched it (home elsewhere, never failed over into it).
  bool ok = true;
  int64_t victims = 0, victims_failed_over = 0;
  double victim_clean_resp = 0.0, victim_fault_resp = 0.0;
  double bystander_clean_goodput = 0.0, bystander_fault_goodput = 0.0;
  int64_t bystanders = 0;
  for (size_t i = 0; i < fault.clients.size(); ++i) {
    const fleet::ClientResult& b = fault.clients[i];
    const fleet::ClientResult& a = clean.clients[i];
    if (b.home_cell == dead_cell) {
      ++victims;
      if (b.failovers > 0) ++victims_failed_over;
      victim_clean_resp += a.metrics.total_response_seconds;
      victim_fault_resp += b.metrics.total_response_seconds;
    } else if (b.failovers == 0) {
      ++bystanders;
      bystander_clean_goodput += Goodput(a.metrics);
      bystander_fault_goodput += Goodput(b.metrics);
    }
  }
  if (victims == 0 || victims_failed_over == 0) {
    std::fprintf(stderr,
                 "FATAL: outage on cell %d forced no failover "
                 "(%lld clients homed there)\n",
                 dead_cell, static_cast<long long>(victims));
    ok = false;
  }
  const double failover_coverage =
      victims > 0 ? static_cast<double>(victims_failed_over) /
                        static_cast<double>(victims)
                  : 0.0;
  const double healthy_goodput_ratio =
      bystander_clean_goodput > 0.0
          ? bystander_fault_goodput / bystander_clean_goodput
          : 0.0;
  if (bystanders == 0 || healthy_goodput_ratio < 0.9) {
    std::fprintf(stderr,
                 "FATAL: bystanders kept %.1f%% of fault-free goodput "
                 "(need >= 90%%, %lld bystanders)\n",
                 100.0 * healthy_goodput_ratio,
                 static_cast<long long>(bystanders));
    ok = false;
  }

  const double mean_response_clean =
      clean.aggregate.MeanResponseSeconds();
  const double mean_response_fault =
      fault.aggregate.MeanResponseSeconds();

  core::PrintTableTitle("Handover under cell failure — 4 cells, 12 clients");
  core::PrintTableHeader({"run", "handovers", "failovers", "reissued",
                          "reissued KB", "resp/frame", "outage s"});
  core::PrintTableRow({"clean", std::to_string(clean.handovers),
                       std::to_string(clean.failovers),
                       std::to_string(clean.reissued_transfers),
                       core::Fmt(clean.reissued_bytes / 1024.0, 1),
                       core::Fmt(mean_response_clean, 3),
                       core::Fmt(clean.cell_outage_seconds, 1)});
  core::PrintTableRow({"fault", std::to_string(fault.handovers),
                       std::to_string(fault.failovers),
                       std::to_string(fault.reissued_transfers),
                       core::Fmt(fault.reissued_bytes / 1024.0, 1),
                       core::Fmt(mean_response_fault, 3),
                       core::Fmt(fault.cell_outage_seconds, 1)});
  std::printf(
      "dead cell %d: %lld/%lld homed clients failed over; bystanders "
      "kept %.1f%% of fault-free goodput\n",
      dead_cell, static_cast<long long>(victims_failed_over),
      static_cast<long long>(victims), 100.0 * healthy_goodput_ratio);
  std::printf(
      "victim delivery delay %.1f s -> %.1f s across the blackout\n",
      victim_clean_resp, victim_fault_resp);

  if (!bench::WriteBenchJson(
          "handover",
          {{"healthy_goodput_ratio", healthy_goodput_ratio, true},
           {"failover_coverage", failover_coverage, true},
           {"reissued_transfers",
            static_cast<double>(fault.reissued_transfers), true},
           {"mean_response_fault", mean_response_fault, false}})) {
    return 1;
  }

  return ok ? 0 : 1;
}
