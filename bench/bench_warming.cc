// Extension experiment: motion-aware asynchronous page prefetching
// (storage/pool_warmer.h) — background buffer-pool warming driven by the
// fleet's predicted motion.
//
// The scenario is the warmer's reason to exist: a roaming fleet on a
// cold pool. Six clients sweep the scene in straight lanes at constant
// speed, so every frame's windows land mostly on pages nobody has
// touched yet. Without warming each first touch stalls the query on
// synchronous page reads; with warming the interest field (the same
// predictor state the motion eviction policy uses) points one tick
// ahead of each lane and the warmer has those pages resident before the
// query arrives. The pool is sized to ~10% of the dataset's pages, so
// nothing survives long — the bench measures prediction, not capacity.
//
// Three configurations replay the identical schedule in lockstep:
//
//   off   --warm off (the passthrough baseline)
//   on    --warm on, 2 I/O workers
//   on8   --warm on, 8 I/O workers (determinism control)
//
// The bench fails loudly if:
//
//   * any query returns different records or node accesses across the
//     three configurations (warming must be invisible to results), or
//   * `on` and `on8` end with different pool counters — the warmer's
//     install protocol makes the I/O pool width unobservable, or
//   * warming never issued a prefetch (the comparison would be vacuous), or
//   * neither acceptance criterion holds: warm-on pool hit rate at least
//     1.5x warm-off, or warm-on p99 first-touch stall (synchronous page
//     reads per query) at least 1.3x lower than warm-off.
//
// CI runs this with MARS_BENCH_SMOKE=1 / MARS_BENCH_JSON=<path>; the
// emitted metrics are deterministic simulated quantities (hit rates,
// stall pages — never wall clock), gated against bench/baselines/ by
// tools/bench_gate.py.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "geometry/box.h"
#include "geometry/vec.h"
#include "index/record.h"
#include "index/shard_map.h"
#include "index/sharded_index.h"
#include "server/motion_interest.h"
#include "storage/storage_manager.h"

namespace {

using namespace mars;  // NOLINT

constexpr int32_t kShards = 4;
constexpr int32_t kPageSize = 2048;
constexpr double kSpaceExtent = 1000.0;
constexpr int kClients = 4;

// Like the storage bench's synthetic coefficient table — clustered
// objects, support regions growing with coefficient weight — but with
// tight supports (a few units, not tens): queries then touch a compact
// set of leaf pages, so the pool holds several frames of working set
// and residency is decided by prediction rather than raw churn.
std::vector<index::CoeffRecord> MakeRecords(int objects, int coeffs,
                                            uint64_t seed) {
  common::Rng rng(seed);
  std::vector<index::CoeffRecord> records;
  records.reserve(static_cast<size_t>(objects) * coeffs);
  for (int obj = 0; obj < objects; ++obj) {
    const double cx = rng.Uniform(50, 950);
    const double cy = rng.Uniform(50, 950);
    for (int c = 0; c < coeffs; ++c) {
      index::CoeffRecord rec;
      rec.object_id = obj;
      rec.coeff_id = c;
      rec.w = rng.UniformDouble();
      const double extent = 1.0 + 4.0 * rec.w;
      const double x = cx + rng.Uniform(-25, 25);
      const double y = cy + rng.Uniform(-25, 25);
      rec.position = {x, y, rng.Uniform(0, 20)};
      rec.support_bounds = geometry::MakeBox3(x - extent, y - extent, 0,
                                              x + extent, y + extent, 20);
      records.push_back(rec);
    }
  }
  return records;
}

struct Step {
  int32_t client_id = 0;
  geometry::Vec2 position;
  geometry::Box2 window;
};

geometry::Box2 WindowAround(const geometry::Vec2& p, double half) {
  const double lo_x = std::clamp(p.x - half, 0.0, kSpaceExtent);
  const double lo_y = std::clamp(p.y - half, 0.0, kSpaceExtent);
  const double hi_x = std::clamp(p.x + half, 0.0, kSpaceExtent);
  const double hi_y = std::clamp(p.y + half, 0.0, kSpaceExtent);
  return geometry::MakeBox2(lo_x, lo_y, hi_x, hi_y);
}

// Straight lanes at constant speed: client c sweeps x = 120 + 140c
// bottom-to-top (odd clients top-to-bottom), covering fresh territory
// every frame — the cold-start roam the warmer is built for.
std::vector<std::vector<Step>> MakeSchedule(int32_t frames, double speed,
                                            double half) {
  std::vector<std::vector<Step>> schedule;
  schedule.reserve(static_cast<size_t>(frames));
  for (int32_t t = 0; t < frames; ++t) {
    std::vector<Step> frame;
    for (int32_t c = 0; c < kClients; ++c) {
      const double x = 125.0 + 190.0 * c;
      const double travelled = 40.0 + speed * t;
      const double y = (c % 2 == 0) ? travelled : kSpaceExtent - travelled;
      Step step;
      step.client_id = c;
      step.position = {x, y};
      step.window = WindowAround(step.position, half);
      frame.push_back(step);
    }
    schedule.push_back(std::move(frame));
  }
  return schedule;
}

index::ShardedIndexOptions WarmOptions(const std::string& path,
                                       int64_t pool_pages, bool warm,
                                       int32_t warm_budget,
                                       int32_t warm_workers) {
  index::ShardedIndexOptions options;
  options.shards = kShards;
  options.storage.store = storage::StoreKind::kDisk;
  options.storage.path = path;
  options.storage.page_size = kPageSize;
  options.storage.pool_pages = pool_pages;
  options.storage.evict = storage::EvictPolicy::kMotion;
  options.storage.warm = warm;
  options.storage.warm_budget = warm_budget;
  options.storage.warm_workers = warm_workers;
  return options;
}

void RemovePageFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".shardmap").c_str());
  for (int32_t k = 0; k < kShards; ++k) {
    std::remove((path + ".shard" + std::to_string(k)).c_str());
  }
}

struct PoolTotals {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t disk_reads = 0;
  int64_t disk_writes = 0;
  int64_t resident_pages = 0;
  int64_t prefetch_issued = 0;
  int64_t prefetch_hits = 0;
  int64_t prefetch_wasted = 0;
  int64_t prefetch_dropped = 0;
};

PoolTotals SumPools(const index::ShardedCoefficientIndex& index) {
  PoolTotals total;
  for (const auto& shard : index.PoolStats()) {
    total.hits += shard.pool.hits;
    total.misses += shard.pool.misses;
    total.evictions += shard.pool.evictions;
    total.disk_reads += shard.pool.disk_reads;
    total.disk_writes += shard.pool.disk_writes;
    total.resident_pages += shard.pool.resident_pages;
    total.prefetch_issued += shard.pool.prefetch_issued;
    total.prefetch_hits += shard.pool.prefetch_hits;
    total.prefetch_wasted += shard.pool.prefetch_wasted;
    total.prefetch_dropped += shard.pool.prefetch_dropped;
  }
  return total;
}

double HitRate(const PoolTotals& t) {
  const double total = static_cast<double>(t.hits + t.misses);
  return total > 0.0 ? static_cast<double>(t.hits) / total : 0.0;
}

// p99 over per-query synchronous page reads — the first-touch stall
// proxy: a query that faults k pages in from disk stalls k reads long.
double P99(std::vector<int64_t> stalls) {
  if (stalls.empty()) return 0.0;
  std::sort(stalls.begin(), stalls.end());
  const double n = static_cast<double>(stalls.size());
  const size_t rank = static_cast<size_t>(std::ceil(0.99 * n));
  const size_t idx = rank > 0 ? rank - 1 : 0;
  return static_cast<double>(stalls[std::min(idx, stalls.size() - 1)]);
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const int objects = smoke ? 3200 : 4800;
  const int coeffs = 40;
  const double lane_speed = 20.0;
  const int32_t frames = 44;
  // The warm budget tracks the fleet's per-frame miss front, which
  // scales with record density (objects), not with the pool.
  const int32_t warm_budget = smoke ? 48 : 72;
  const double window_half = 25.0;
  // Skip the first frames when measuring: the predictor needs a couple
  // of observations to lock each lane's velocity and the warmer's
  // dispatch → install pipeline is one tick deep, so the earliest a
  // speculative page can pay off is frame 2. The ramp queries still run
  // (and still must match warm-off exactly) — they just don't count.
  const int32_t ramp_frames = 3;

  const auto records = MakeRecords(objects, coeffs, /*seed=*/11);
  const geometry::Box2 space = index::ShardMap::GroundBounds(records);
  const auto schedule = MakeSchedule(frames, lane_speed, window_half);

  // Probe build: an unbounded pool retains every page the build writes,
  // so the resident total is the dataset's page count — which sizes the
  // contenders' pools at ~10% of the data.
  const std::string probe_path = "bench_warming_probe.pages";
  RemovePageFiles(probe_path);
  int64_t dataset_pages = 0;
  {
    index::ShardedCoefficientIndex probe(WarmOptions(
        probe_path, /*pool_pages=*/1 << 30, /*warm=*/false, 48, 1));
    probe.Build(records);
    dataset_pages = SumPools(probe).resident_pages;
  }
  RemovePageFiles(probe_path);
  const int64_t pool_pages = std::max<int64_t>(kShards, dataset_pages / 10);

  // The three contenders replay the same schedule in lockstep.
  struct Pass {
    const char* name;
    std::string path;
    bool warm;
    int32_t warm_workers;
    std::unique_ptr<index::ShardedCoefficientIndex> index;
    std::vector<int64_t> stalls;  // per-query synchronous page reads
  };
  Pass passes[] = {
      {"off", "bench_warming_off.pages", false, 1, nullptr, {}},
      {"on", "bench_warming_on.pages", true, 2, nullptr, {}},
      {"on8", "bench_warming_on8.pages", true, 8, nullptr, {}},
  };
  for (Pass& pass : passes) {
    RemovePageFiles(pass.path);
    pass.index = std::make_unique<index::ShardedCoefficientIndex>(WarmOptions(
        pass.path, pool_pages, pass.warm, warm_budget, pass.warm_workers));
    pass.index->Build(records);
  }

  // Interest field tuned for warm-ahead rather than broad protection: a
  // grid finer than the query windows (blocks ~31 units vs 50-unit
  // windows) so "just behind" and "just ahead" of a lane land in
  // different cells, and a short horizon so probability mass
  // concentrates on the next few frames instead of smearing down the
  // whole lane.
  server::MotionInterestTracker::Options interest_options;
  interest_options.grid_nx = 32;
  interest_options.grid_ny = 32;
  interest_options.probability.horizon = 4;
  server::MotionInterestTracker tracker(space, interest_options);
  int64_t queries = 0;
  size_t measure_start = 0;
  PoolTotals base[3];
  for (int32_t frame_idx = 0; frame_idx < frames; ++frame_idx) {
    const std::vector<Step>& frame = schedule[static_cast<size_t>(frame_idx)];
    // Mirror the fleet's serial phase: install the previous tick's
    // speculative reads, refresh the interest field, dispatch the next
    // batch — then serve the tick's queries (which overlap the new
    // batch's reads, exactly as fleet Phase A does).
    for (const Step& step : frame) {
      tracker.Observe(step.client_id, step.position);
    }
    const storage::InterestGrid interest = tracker.Snapshot();
    for (Pass& pass : passes) {
      pass.index->WarmJoin();
      pass.index->UpdateInterest(interest);
      pass.index->WarmDispatch();
    }

    if (frame_idx == ramp_frames) {
      measure_start = passes[0].stalls.size();
      for (int p = 0; p < 3; ++p) {
        base[p] = SumPools(*passes[p].index);
      }
    }

    for (const Step& step : frame) {
      std::vector<index::RecordId> want;
      int64_t want_io = 0;
      for (Pass& pass : passes) {
        const PoolTotals before = SumPools(*pass.index);
        std::vector<index::RecordId> got;
        const int64_t io = pass.index->Query(step.window, 0.2, 1.0, &got);
        const PoolTotals after = SumPools(*pass.index);
        pass.stalls.push_back(after.disk_reads - before.disk_reads);
        if (&pass == &passes[0]) {
          want = std::move(got);
          want_io = io;
        } else if (got != want || io != want_io) {
          std::fprintf(stderr,
                       "FATAL: pass %s diverged from warm-off on query %lld "
                       "(records %zu vs %zu, accesses %lld vs %lld) — "
                       "warming changed results\n",
                       pass.name, static_cast<long long>(queries), got.size(),
                       want.size(), static_cast<long long>(io),
                       static_cast<long long>(want_io));
          for (Pass& p : passes) RemovePageFiles(p.path);
          return 1;
        }
      }
      ++queries;
    }
  }
  for (Pass& pass : passes) pass.index->WarmJoin();

  const PoolTotals off = SumPools(*passes[0].index);
  const PoolTotals on = SumPools(*passes[1].index);
  const PoolTotals on8 = SumPools(*passes[2].index);
  for (Pass& pass : passes) {
    pass.index.reset();
    RemovePageFiles(pass.path);
  }

  // The I/O pool width must be unobservable: every counter — query-path
  // and prefetch alike — identical between 2 and 8 warm workers.
  if (on.hits != on8.hits || on.misses != on8.misses ||
      on.evictions != on8.evictions || on.disk_reads != on8.disk_reads ||
      on.disk_writes != on8.disk_writes ||
      on.prefetch_issued != on8.prefetch_issued ||
      on.prefetch_hits != on8.prefetch_hits ||
      on.prefetch_wasted != on8.prefetch_wasted ||
      on.prefetch_dropped != on8.prefetch_dropped ||
      passes[1].stalls != passes[2].stalls) {
    std::fprintf(stderr,
                 "FATAL: warm-workers 2 vs 8 pool counters diverged — the "
                 "warmer leaked I/O timing into observable state\n");
    return 1;
  }
  if (on.prefetch_issued == 0) {
    std::fprintf(stderr,
                 "FATAL: warming never issued a prefetch; the comparison "
                 "is vacuous\n");
    return 1;
  }

  // Rates and percentiles over the measured window only (post-ramp).
  auto measured = [&](const PoolTotals& totals, const PoolTotals& start) {
    PoolTotals d = totals;
    d.hits -= start.hits;
    d.misses -= start.misses;
    d.evictions -= start.evictions;
    d.disk_reads -= start.disk_reads;
    return d;
  };
  const PoolTotals off_run = measured(off, base[0]);
  const PoolTotals on_run = measured(on, base[1]);
  auto measured_stalls = [&](const Pass& pass) {
    return std::vector<int64_t>(pass.stalls.begin() +
                                    static_cast<std::ptrdiff_t>(measure_start),
                                pass.stalls.end());
  };
  const double off_hit_rate = HitRate(off_run);
  const double on_hit_rate = HitRate(on_run);
  const double hit_ratio =
      off_hit_rate > 0.0 ? on_hit_rate / off_hit_rate : 0.0;
  const double off_p99 = P99(measured_stalls(passes[0]));
  const double on_p99 = P99(measured_stalls(passes[1]));
  const double stall_ratio = on_p99 > 0.0 ? off_p99 / on_p99 : off_p99;

  std::printf("motion-aware pool warming%s\n", smoke ? " (smoke)" : "");
  std::printf(
      "dataset: %zu records, %lld pages of %d B; pool %lld pages "
      "(%.1f%% of data) split over %d shards\n",
      records.size(), static_cast<long long>(dataset_pages), kPageSize,
      static_cast<long long>(pool_pages),
      100.0 * static_cast<double>(pool_pages) /
          static_cast<double>(std::max<int64_t>(dataset_pages, 1)),
      kShards);
  std::printf(
      "workload: %lld queries over %d frames (%d-frame ramp excluded from "
      "measurement), %d roaming lanes at %.0f units/frame\n",
      static_cast<long long>(queries), frames, ramp_frames, kClients,
      lane_speed);
  std::printf("%-6s %10s %12s %16s %12s\n", "warm", "hit rate", "page reads",
              "p99 stall pages", "evictions");
  std::printf("%-6s %9.1f%% %12lld %16.0f %12lld\n", "off",
              100.0 * off_hit_rate,
              static_cast<long long>(off_run.disk_reads), off_p99,
              static_cast<long long>(off_run.evictions));
  std::printf("%-6s %9.1f%% %12lld %16.0f %12lld\n", "on",
              100.0 * on_hit_rate, static_cast<long long>(on_run.disk_reads),
              on_p99, static_cast<long long>(on_run.evictions));
  std::printf(
      "prefetch: %lld issued, %lld hit, %lld wasted, %lld dropped\n",
      static_cast<long long>(on.prefetch_issued),
      static_cast<long long>(on.prefetch_hits),
      static_cast<long long>(on.prefetch_wasted),
      static_cast<long long>(on.prefetch_dropped));
  std::printf(
      "warm-on hit rate %.2fx warm-off; p99 first-touch stall %.2fx "
      "lower\n",
      hit_ratio, stall_ratio);
  std::printf("every warm query matched warm-off exactly\n");

  if (hit_ratio < 1.5 && stall_ratio < 1.3) {
    std::fprintf(stderr,
                 "FATAL: warming met neither acceptance bar (hit-rate "
                 "ratio %.3f < 1.5 and p99 stall ratio %.3f < 1.3)\n",
                 hit_ratio, stall_ratio);
    return 1;
  }

  const std::vector<bench::BenchMetric> metrics = {
      {"warm_on_hit_rate", on_hit_rate, true},
      {"warm_off_hit_rate", off_hit_rate, true},
      {"warm_hit_ratio", hit_ratio, true},
      {"warm_on_p99_stall_pages", on_p99, false},
      {"warm_off_p99_stall_pages", off_p99, false},
      {"warm_on_page_reads", static_cast<double>(on.disk_reads), false},
      {"prefetch_issued", static_cast<double>(on.prefetch_issued), false},
      {"prefetch_hits", static_cast<double>(on.prefetch_hits), true},
  };
  if (!bench::WriteBenchJson("warming", metrics)) {
    return 1;
  }
  return 0;
}
