// Ablation: client memory organization (DESIGN.md Sec. 4).
//
// Three ways for the client to remember what it already holds, run over
// the same tours:
//   - frame:    Algorithm 1 with one-frame memory (StreamingClient) plus
//               the server-side session filter;
//   - semantic: region × band algebra over the full history
//               (SemanticClient, after Zheng & Lee — the paper's
//               reference [8]);
//   - blocks:   grid-block buffer with prefetching disabled
//               (BufferedClient), the unit the paper's cost model uses.
// Reported: bytes transferred, server exchanges, and index node accesses
// per tour. Pedestrian tours revisit ground repeatedly, which is where
// semantic memory shines (revisited frames cost nothing at all); the
// trade-off it exposes is query *fragmentation* — trimming against a long
// history shatters the window into many small remainder rectangles, each
// paying a root-to-leaf index descent, so its I/O is the highest of the
// three. Block granularity batches best (fewest exchanges) at the cost of
// fetching whole blocks.

#include <cstdio>

#include "bench/bench_util.h"
#include "client/buffered_client.h"
#include "client/semantic_client.h"
#include "client/streaming_client.h"
#include "common/units.h"
#include "core/experiment.h"
#include "net/link.h"

namespace {

using namespace mars;  // NOLINT

struct Totals {
  int64_t bytes = 0;
  int64_t exchanges = 0;
  int64_t node_accesses = 0;
};

Totals RunStreaming(
    core::System& system,
    const std::vector<std::vector<workload::TourPoint>>& tours) {
  Totals totals;
  for (const auto& tour : tours) {
    net::SimulatedLink link;
    client::StreamingClient cl(client::StreamingClient::Options(),
                               system.space(), &system.server(), &link);
    for (const auto& p : tour) {
      const auto r = cl.Step(p.position, p.speed);
      totals.bytes += r.response_bytes;
      totals.node_accesses += r.node_accesses;
      if (r.sub_queries > 0) ++totals.exchanges;
    }
  }
  return totals;
}

Totals RunSemantic(core::System& system,
                   const std::vector<std::vector<workload::TourPoint>>& tours) {
  Totals totals;
  for (const auto& tour : tours) {
    net::SimulatedLink link;
    client::SemanticClient cl(client::SemanticClient::Options(),
                              system.space(), &system.server(), &link);
    for (const auto& p : tour) {
      const auto r = cl.Step(p.position, p.speed);
      totals.bytes += r.response_bytes;
      totals.node_accesses += r.node_accesses;
      if (r.sub_queries > 0) ++totals.exchanges;
    }
  }
  return totals;
}

Totals RunBlocks(core::System& system,
                 const std::vector<std::vector<workload::TourPoint>>& tours) {
  Totals totals;
  client::BufferedClient::Options options;
  options.enable_prefetch = false;
  options.buffer_bytes = 4 * 1024 * 1024;  // memory-rich: isolate the
                                           // bookkeeping, not eviction
  for (const auto& tour : tours) {
    net::SimulatedLink link;
    client::BufferedClient cl(options, system.space(), &system.server(),
                              &link);
    for (const auto& p : tour) {
      const auto r = cl.Step(p.position, p.speed);
      totals.bytes += r.demand_bytes;
      totals.node_accesses += r.node_accesses;
      if (r.demand_bytes > 0) ++totals.exchanges;
    }
  }
  return totals;
}

}  // namespace

int main() {
  core::System::Config config = bench::DefaultConfig();
  config.scene = workload::SceneForDatasetSize(20);
  auto system_or = core::System::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  core::PrintTableTitle(
      "Ablation — client memory organization (bytes and exchanges per "
      "tour, speed 0.5)");
  core::PrintTableHeader({"kind", "scheme", "MB", "exchanges", "io/tour"});
  for (auto kind :
       {workload::TourKind::kTram, workload::TourKind::kPedestrian}) {
    const auto tours = bench::MakeTours(kind, 0.5, bench::kDefaultTours,
                                        400, -1.0, system.space());
    const Totals frame = RunStreaming(system, tours);
    const Totals semantic = RunSemantic(system, tours);
    const Totals blocks = RunBlocks(system, tours);
    const double n = static_cast<double>(tours.size());
    auto row = [&](const char* name, const Totals& t) {
      core::PrintTableRow({bench::TourKindName(kind), name,
                           core::Fmt(t.bytes / n / (1024.0 * 1024.0), 3),
                           core::Fmt(t.exchanges / n, 0),
                           core::Fmt(t.node_accesses / n, 0)});
    };
    row("frame", frame);
    row("semantic", semantic);
    row("blocks", blocks);
  }
  return 0;
}
