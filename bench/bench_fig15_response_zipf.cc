// Reproduces Fig. 15 of the paper: "Query response time (Zipf)" — the
// overall system comparison of Fig. 14 repeated on a Zipf-placed scene
// (objects clustered around Zipf-weighted hotspots). Expected shapes match
// Fig. 14: the naive system degrades with speed, the motion-aware system
// stays roughly flat, and trams beat pedestrians slightly.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/experiment.h"

int main() {
  using namespace mars;  // NOLINT

  core::System::Config config = bench::DefaultConfig();
  config.scene.placement = workload::Placement::kZipf;
  auto system_or = core::System::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  constexpr int32_t kFrames = 300;
  constexpr double kQueryFraction = 0.05;

  core::PrintTableTitle(
      "Fig. 15 — mean query response time vs speed (Zipf data)");
  core::PrintTableHeader({"speed", "kind", "MA (s)", "naive (s)",
                          "speedup"});
  for (double speed : core::StandardSpeeds()) {
    for (auto kind :
         {workload::TourKind::kTram, workload::TourKind::kPedestrian}) {
      const auto tours = bench::MakeTours(kind, speed, 8,
                                          kFrames, -1.0, system.space());
      client::BufferedClient::Options ma;
      ma.query_fraction = kQueryFraction;
      ma.buffer_bytes = 64 * 1024;
      client::NaiveObjectClient::Options naive;
      naive.query_fraction = kQueryFraction;
      naive.cache_bytes = 64 * 1024;
      const core::RunMetrics m = bench::AverageBuffered(system, tours, ma);
      const core::RunMetrics n =
          bench::AverageNaiveObject(system, tours, naive);
      // Per-query response time: averaged over the frames whose query
      // actually went to the server (locally served frames wait for
      // nothing), as the paper reports it.
      const double ma_resp = m.MeanResponsePerExchange();
      const double nv_resp = n.MeanResponsePerExchange();
      const double speedup = ma_resp > 0 ? nv_resp / ma_resp : 0.0;
      core::PrintTableRow({core::Fmt(speed, 3), bench::TourKindName(kind),
                           core::Fmt(ma_resp, 3), core::Fmt(nv_resp, 3),
                           core::Fmt(speedup, 1) + "x"});
    }
  }
  return 0;
}
