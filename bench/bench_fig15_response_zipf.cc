// Reproduces Fig. 15 of the paper: "Query response time (Zipf)" — the
// overall system comparison of Fig. 14 repeated on a Zipf-placed scene
// (objects clustered around Zipf-weighted hotspots). Expected shapes match
// Fig. 14: the naive system degrades with speed, the motion-aware system
// stays roughly flat, and trams beat pedestrians slightly.
//
// CI runs this with MARS_BENCH_SMOKE=1 (shorter tours, two speeds) and
// MARS_BENCH_JSON=<path> for the artifact upload.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/experiment.h"

int main() {
  using namespace mars;  // NOLINT

  core::System::Config config = bench::DefaultConfig();
  config.scene.placement = workload::Placement::kZipf;
  auto system_or = core::System::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  const bool smoke = bench::SmokeMode();
  const int32_t frames = smoke ? 60 : 300;
  const int tours_per_setting = smoke ? 2 : 8;
  constexpr double kQueryFraction = 0.05;
  const std::vector<double> speeds =
      smoke ? std::vector<double>{0.25, 1.0} : core::StandardSpeeds();

  double ma_top_speed = 0.0;
  double naive_top_speed = 0.0;
  core::PrintTableTitle(
      "Fig. 15 — mean query response time vs speed (Zipf data)");
  core::PrintTableHeader({"speed", "kind", "MA (s)", "naive (s)",
                          "speedup"});
  for (double speed : speeds) {
    for (auto kind :
         {workload::TourKind::kTram, workload::TourKind::kPedestrian}) {
      const auto tours = bench::MakeTours(kind, speed, tours_per_setting,
                                          frames, -1.0, system.space());
      client::BufferedClient::Options ma;
      ma.query_fraction = kQueryFraction;
      ma.buffer_bytes = 64 * 1024;
      client::NaiveObjectClient::Options naive;
      naive.query_fraction = kQueryFraction;
      naive.cache_bytes = 64 * 1024;
      const core::RunMetrics m = bench::AverageBuffered(system, tours, ma);
      const core::RunMetrics n =
          bench::AverageNaiveObject(system, tours, naive);
      // Per-query response time: averaged over the frames whose query
      // actually went to the server (locally served frames wait for
      // nothing), as the paper reports it.
      const double ma_resp = m.MeanResponsePerExchange();
      const double nv_resp = n.MeanResponsePerExchange();
      const double speedup = ma_resp > 0 ? nv_resp / ma_resp : 0.0;
      if (speed == speeds.back() && kind == workload::TourKind::kTram) {
        ma_top_speed = ma_resp;
        naive_top_speed = nv_resp;
      }
      core::PrintTableRow({core::Fmt(speed, 3), bench::TourKindName(kind),
                           core::Fmt(ma_resp, 3), core::Fmt(nv_resp, 3),
                           core::Fmt(speedup, 1) + "x"});
    }
  }

  const double top_gain =
      ma_top_speed > 0 ? naive_top_speed / ma_top_speed : 0.0;
  if (!bench::WriteBenchJson(
          "fig15_response_zipf",
          {{"ma_response_tram_top_speed_seconds", ma_top_speed, false},
           {"naive_response_tram_top_speed_seconds", naive_top_speed,
            false},
           {"speedup_tram_top_speed", top_gain, true}})) {
    return 1;
  }
  return 0;
}
