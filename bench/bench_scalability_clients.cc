// Extension experiment: multi-client scalability.
//
// The paper evaluates one client on a dedicated 256 Kbps bearer. A
// deployed server faces many concurrent tourists sharing a cell. This
// bench runs true concurrent fleets through the FleetEngine — N live
// clients (alternating tram/walk, distinct seeds) against ONE shared
// server and ONE 2 Mbps shared cell (processor sharing, 256 Kbps
// per-client cap) — and reports the mean per-query delivery delay as the
// cell fills. Earlier revisions re-priced offline single-client traces;
// the fleet engine replaces that with an actual simulation: exchanges
// queue against each other at the instants they really happen, and the
// server's session table and hot-encoding cache see the true
// interleaving.
//
// Expected shape: the motion-aware system's tiny transfers leave the cell
// underutilized, so response times stay nearly flat out to many clients;
// the naive full-resolution system saturates the cell almost immediately
// and degrades roughly linearly with N.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/experiment.h"
#include "fleet/fleet_engine.h"

namespace {

using namespace mars;  // NOLINT

constexpr int32_t kFrames = 200;
constexpr double kSpeed = 0.5;

// A homogeneous fleet of n clients of one kind, with the same id-derived
// seeds and tours regardless of kind, so the two series face identical
// workloads.
std::vector<fleet::ClientSpec> UniformFleet(int n, fleet::ClientKind kind) {
  std::vector<fleet::ClientSpec> specs =
      fleet::FleetEngine::MakeMixedFleet(n, kFrames, kSpeed, /*seed=*/0);
  for (fleet::ClientSpec& spec : specs) spec.kind = kind;
  return specs;
}

double MeanDelay(const core::System& system,
                 std::vector<fleet::ClientSpec> specs) {
  fleet::FleetOptions options;
  options.workers = 1;
  fleet::FleetEngine engine(system, options, std::move(specs));
  const fleet::FleetResult result = engine.Run();
  return result.aggregate.MeanResponsePerExchange();
}

}  // namespace

int main() {
  auto system_or = core::System::Create(bench::DefaultConfig());
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  std::vector<std::vector<std::string>> rows;
  for (int n : {1, 2, 4, 8, 16}) {
    const double motion_aware =
        MeanDelay(system, UniformFleet(n, fleet::ClientKind::kBuffered));
    const double naive =
        MeanDelay(system, UniformFleet(n, fleet::ClientKind::kNaive));
    rows.push_back({std::to_string(n), core::Fmt(motion_aware, 3),
                    core::Fmt(naive, 3)});
  }

  core::PrintTableTitle(
      "Scalability — per-query response time (s) vs concurrent clients "
      "(2 Mbps cell)");
  core::PrintTableHeader({"clients", "motion-aware", "naive"});
  for (const auto& row : rows) core::PrintTableRow(row);

  std::printf("\n-- json --\n");
  for (const auto& row : rows) {
    std::printf("%s\n", core::TableRowJson(row).c_str());
  }
  return 0;
}
