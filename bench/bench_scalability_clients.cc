// Extension experiment: multi-client scalability.
//
// The paper evaluates one client on a dedicated 256 Kbps bearer. A
// deployed server faces many concurrent tourists sharing a cell. This
// bench runs N clients (alternating tram/walk, distinct seeds) over the
// same 60 MB scene and re-prices their per-frame transfers on a shared
// 2 Mbps cell (processor sharing, 256 Kbps per-client cap): the mean
// per-query response time is reported as the cell fills.
//
// Expected shape: the motion-aware system's tiny transfers leave the cell
// underutilized, so response times stay nearly flat out to many clients;
// the naive full-resolution system saturates the cell almost immediately
// and degrades roughly linearly with N.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "client/buffered_client.h"
#include "client/naive_client.h"
#include "core/experiment.h"
#include "net/link.h"
#include "net/shared_link.h"

namespace {

using namespace mars;  // NOLINT

constexpr int32_t kFrames = 200;
constexpr double kSpeed = 0.5;

// Per-frame demand bytes and speeds for one client.
struct ClientTrace {
  std::vector<int64_t> bytes;
  std::vector<double> speeds;
};

// Re-prices the traces on a shared medium: exchanges are submitted at
// their frame times (1 s apart) and drain under processor sharing;
// returns the mean delivery delay per exchange.
double SharedResponse(const std::vector<ClientTrace>& traces) {
  net::SharedMediumLink cell;
  double total = 0.0;
  int64_t exchanges = 0;
  auto account = [&](const std::vector<net::SharedMediumLink::Completion>&
                         completions) {
    for (const auto& c : completions) {
      total += c.response_seconds;
      ++exchanges;
    }
  };
  for (int32_t f = 0; f < kFrames; ++f) {
    for (size_t c = 0; c < traces.size(); ++c) {
      if (traces[c].bytes[f] > 0) {
        cell.Submit(static_cast<int32_t>(c), traces[c].bytes[f],
                    traces[c].speeds[f]);
      }
    }
    account(cell.Advance(1.0));  // one query frame per second
  }
  account(cell.DrainAll());
  return exchanges == 0 ? 0.0 : total / exchanges;
}

}  // namespace

int main() {
  auto system_or = core::System::Create(bench::DefaultConfig());
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  core::PrintTableTitle(
      "Scalability — per-query response time (s) vs concurrent clients "
      "(2 Mbps cell)");
  core::PrintTableHeader({"clients", "motion-aware", "naive"});
  for (int n : {1, 2, 4, 8, 16}) {
    std::vector<ClientTrace> ma_traces, naive_traces;
    for (int c = 0; c < n; ++c) {
      workload::TourOptions tour_options;
      tour_options.space = system.space();
      tour_options.kind = (c % 2 == 0) ? workload::TourKind::kTram
                                       : workload::TourKind::kPedestrian;
      tour_options.target_speed = kSpeed;
      tour_options.frames = kFrames;
      tour_options.tram_stop_frames = 0;
      tour_options.seed = 3000 + 23 * static_cast<uint64_t>(c);
      const auto tour = workload::GenerateTour(tour_options);

      // Motion-aware client trace (the client's own link is only used for
      // data-flow accounting; pricing happens on the shared cell).
      {
        net::SimulatedLink link;
        client::BufferedClient::Options options;
        options.query_fraction = 0.05;
        options.buffer_bytes = 64 * 1024;
        options.seed = 100 + static_cast<uint64_t>(c);
        client::BufferedClient cl(options, system.space(), &system.server(),
                                  &link);
        ClientTrace trace;
        for (const auto& p : tour) {
          const auto r = cl.Step(p.position, p.speed);
          trace.bytes.push_back(r.demand_bytes);
          trace.speeds.push_back(p.speed);
        }
        ma_traces.push_back(std::move(trace));
      }
      // Naive client trace.
      {
        net::SimulatedLink link;
        client::NaiveObjectClient::Options options;
        options.query_fraction = 0.05;
        options.cache_bytes = 64 * 1024;
        client::NaiveObjectClient cl(options, system.space(),
                                     &system.server(), &link);
        ClientTrace trace;
        for (const auto& p : tour) {
          const auto r = cl.Step(p.position, p.speed);
          trace.bytes.push_back(r.bytes);
          trace.speeds.push_back(p.speed);
        }
        naive_traces.push_back(std::move(trace));
      }
    }
    core::PrintTableRow({std::to_string(n),
                         core::Fmt(SharedResponse(ma_traces), 3),
                         core::Fmt(SharedResponse(naive_traces), 3)});
  }
  return 0;
}
