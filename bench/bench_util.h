#ifndef MARS_BENCH_BENCH_UTIL_H_
#define MARS_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the figure-reproduction benches. Each bench binary
// regenerates one table/figure of the paper's evaluation (Sec. VII) and
// prints the series as a fixed-width table; see EXPERIMENTS.md for the
// mapping and the expected shapes.

#include <cstdint>
#include <vector>

#include "core/experiment.h"
#include "core/metrics.h"
#include "core/system.h"
#include "workload/tour.h"

namespace mars::bench {

// Number of seeded clients averaged per setting (the paper averages the
// traces of 10 tourists; we default to a smaller count to keep bench
// runtime reasonable — override with --tours=N if desired).
inline constexpr int kDefaultTours = 5;

// Generates `count` seeded tours of the given kind/speed. When
// `distance` > 0 the tours cover that distance (Fig. 8's equal-distance
// setup); otherwise they run for `frames` frames (equal-duration, the
// Figs. 10-15 setup). Scheduled tram stops are disabled by default
// because most benches sweep speed as the controlled variable; pass
// `scheduled_stops = true` for experiments at a fixed cruise speed
// (Fig. 10).
std::vector<std::vector<workload::TourPoint>> MakeTours(
    workload::TourKind kind, double speed, int count, int32_t frames,
    double distance, const geometry::Box2& space,
    bool scheduled_stops = false);

// Runs one client kind over every tour and averages the metrics.
core::RunMetrics AverageStreaming(
    core::System& system,
    const std::vector<std::vector<workload::TourPoint>>& tours,
    const client::StreamingClient::Options& options);

core::RunMetrics AverageBuffered(
    core::System& system,
    const std::vector<std::vector<workload::TourPoint>>& tours,
    const client::BufferedClient::Options& options);

core::RunMetrics AverageNaiveObject(
    core::System& system,
    const std::vector<std::vector<workload::TourPoint>>& tours,
    const client::NaiveObjectClient::Options& options);

// The paper's default testbed: 60 MB uniform scene, support-region index.
core::System::Config DefaultConfig();

const char* TourKindName(workload::TourKind kind);

// --- CI bench-smoke support -------------------------------------------------
//
// The bench-regression CI gate (tools/bench_gate.py) runs selected benches
// with MARS_BENCH_SMOKE=1 (small presets, seconds not minutes) and
// MARS_BENCH_JSON=<path> (machine-readable metrics), then compares the
// metrics against bench/baselines/*.json. Only deterministic *simulated*
// quantities belong in the JSON — never wall-clock — so the gate cannot
// flake on runner speed.

// True when MARS_BENCH_SMOKE is set to a non-empty, non-"0" value.
bool SmokeMode();

// One gated metric. `higher_is_better` tells the gate which direction is
// a regression.
struct BenchMetric {
  const char* name;
  double value;
  bool higher_is_better;
};

// Writes {"bench": name, "metrics": {...}} to the MARS_BENCH_JSON path.
// No-op (returns true) when the variable is unset; returns false and
// prints to stderr when the file cannot be written.
bool WriteBenchJson(const char* bench_name,
                    const std::vector<BenchMetric>& metrics);

}  // namespace mars::bench

#endif  // MARS_BENCH_BENCH_UTIL_H_
