// Ablation: buffer allocation policy (DESIGN.md Sec. 4).
//
// Compares the residence time of three ways to split the block budget
// across k directions, on the star-walk simulator, for several motion
// skews:
//   - eq2:      the paper's recursive Eq.-2 halving (Sec. V-A)
//   - ordered:  the same with the exhaustive best-ordering search the
//               paper says "can be omitted"
//   - uniform:  equal budget per direction (the naive assumption)
//
// Expected shapes: eq2 beats uniform whenever motion is skewed, and the
// exhaustive ordering adds little — quantifying the paper's remark.

#include <cstdio>
#include <vector>

#include "buffer/residence_sim.h"
#include "buffer/sector_allocator.h"
#include "common/rng.h"
#include "core/experiment.h"

int main() {
  using namespace mars;  // NOLINT

  struct Scenario {
    const char* name;
    std::vector<double> probs;
  };
  const std::vector<Scenario> scenarios = {
      {"uniform motion", {0.25, 0.25, 0.25, 0.25}},
      {"mild skew", {0.4, 0.25, 0.2, 0.15}},
      {"strong skew", {0.7, 0.15, 0.1, 0.05}},
      {"extreme skew", {0.85, 0.09, 0.05, 0.01}},
      {"eight dirs", {0.35, 0.2, 0.15, 0.1, 0.08, 0.06, 0.04, 0.02}},
  };
  constexpr int kBudget = 32;
  constexpr int kTrials = 20000;
  constexpr double kReturnProbability = 0.2;

  core::PrintTableTitle(
      "Ablation — mean residence time (steps) by allocation policy, budget "
      "32 blocks");
  core::PrintTableHeader({"scenario", "eq2", "ordered", "uniform",
                          "eq2/unif"});
  for (const Scenario& s : scenarios) {
    const auto eq2 = buffer::AllocateBuffer(s.probs, kBudget);
    const auto ordered = buffer::AllocateBufferBestOrdering(s.probs, kBudget);
    std::vector<int32_t> uniform(s.probs.size(),
                                 kBudget / static_cast<int>(s.probs.size()));
    uniform[0] += kBudget % static_cast<int>(s.probs.size());

    common::Rng rng(99);
    const double t_eq2 = buffer::SimulateStarResidence(
        s.probs, eq2, kReturnProbability, kTrials, rng);
    const double t_ordered = buffer::SimulateStarResidence(
        s.probs, ordered, kReturnProbability, kTrials, rng);
    const double t_uniform = buffer::SimulateStarResidence(
        s.probs, uniform, kReturnProbability, kTrials, rng);
    core::PrintTableRow({s.name, core::Fmt(t_eq2, 1),
                         core::Fmt(t_ordered, 1), core::Fmt(t_uniform, 1),
                         core::Fmt(t_eq2 / t_uniform, 2) + "x"});
  }
  return 0;
}
