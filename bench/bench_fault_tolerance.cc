// Fault-tolerance sweep: how the full motion-aware client degrades as the
// link degrades. Sweeps i.i.d. packet loss {0, 1, 5, 10 %} with the
// outage schedule off and on, and reports both the classic metrics and
// the degraded-operation ones (retries, timeouts, outage/stale frames,
// worst stale run). The link clock only advances while the link is in
// use, so the outage process is parameterized densely (mean gap ~1.5
// link-seconds, mean duration 1.5 s) to land several outages within a
// run's few seconds of link time.
//
// Expected shapes: bytes and hit rate barely move (lost attempts are
// retried, not abandoned), response time grows with loss (retries cost
// link time), and outages convert a bounded number of frames to stale
// rendering instead of hanging the run — every retry loop in the stack is
// budgeted, so the bench terminates even at 10 % loss with outages on.
//
// Besides the fixed-width table (and the MARS_TABLE_CSV / MARS_TABLE_JSON
// hooks bench_util provides), the rows are echoed to stdout as JSON lines
// for direct scripting.
//
// CI runs this with MARS_BENCH_SMOKE=1 / MARS_BENCH_JSON=<path>; the
// emitted metrics are deterministic simulated quantities.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/units.h"
#include "core/experiment.h"

int main() {
  using namespace mars;  // NOLINT

  const bool smoke = bench::SmokeMode();
  const int32_t kFrames = smoke ? 80 : 240;
  constexpr double kSpeed = 0.6;
  const int kTours = smoke ? 2 : 3;

  const std::vector<double> losses = {0.0, 0.01, 0.05, 0.10};

  double mean_response_l5_outage = 0.0;
  double stale_frames_l5_outage = 0.0;
  double hit_rate_l5_outage = 0.0;
  std::vector<std::vector<std::string>> rows;
  for (int outage = 0; outage < 2; ++outage) {
    for (double loss : losses) {
      // The fault schedule is part of the system config, so each cell
      // gets its own (deterministically identical) system. A 20 MB scene
      // keeps the eight rebuilds cheap.
      core::System::Config config;
      config.scene = workload::SceneForDatasetSize(20, 7);
      config.link.loss_probability = loss;
      if (outage != 0) {
        // Mean gap 3 link-seconds, mean duration 4 s: short outages are
        // absorbed by the retry budget (~5 s of attempts + backoff),
        // longer ones exhaust it and force degraded frames.
        config.fault.outage_rate_per_hour = 1200.0;
        config.fault.outage_mean_seconds = 4.0;
        config.fault.seed = 99;
      }
      auto system_or = core::System::Create(config);
      if (!system_or.ok()) {
        std::fprintf(stderr, "%s\n",
                     system_or.status().ToString().c_str());
        return 1;
      }
      core::System& system = **system_or;

      // Pedestrian tours are the prefetcher's hard case (turns are less
      // predictable), so demand fetches — and their failures — actually
      // happen.
      const auto tours =
          bench::MakeTours(workload::TourKind::kPedestrian, kSpeed, kTours,
                           kFrames, -1.0, system.space());
      client::BufferedClient::Options options;
      options.buffer_bytes = 32 * 1024;  // tighter buffer: real misses
      const core::RunMetrics m =
          bench::AverageBuffered(system, tours, options);
      if (loss == 0.05 && outage != 0) {
        mean_response_l5_outage = m.MeanResponseSeconds();
        stale_frames_l5_outage = static_cast<double>(m.stale_frames);
        hit_rate_l5_outage = m.cache_hit_rate;
      }

      rows.push_back({core::Fmt(100 * loss, 0) + "%",
                      outage != 0 ? "on" : "off",
                      core::FmtBytes(m.total_bytes()),
                      core::Fmt(m.MeanResponseSeconds(), 3),
                      core::Fmt(100 * m.cache_hit_rate, 1),
                      std::to_string(m.retries),
                      std::to_string(m.timeouts),
                      std::to_string(m.outage_frames),
                      std::to_string(m.stale_frames),
                      std::to_string(m.max_stale_run_frames)});
    }
  }

  core::PrintTableTitle(
      "Fault tolerance — buffered client vs loss and outages");
  core::PrintTableHeader({"loss", "outage", "bytes", "resp/frame",
                          "hit %", "retries", "timeouts", "outage fr",
                          "stale fr", "worst run"});
  for (const auto& row : rows) core::PrintTableRow(row);

  std::printf("\n-- json --\n");
  for (const auto& row : rows) {
    std::printf("%s\n", core::TableRowJson(row).c_str());
  }

  if (!bench::WriteBenchJson(
          "fault_tolerance",
          {{"mean_response_l5_outage", mean_response_l5_outage, false},
           {"stale_frames_l5_outage", stale_frames_l5_outage, false},
           {"hit_rate_l5_outage", hit_rate_l5_outage, true}})) {
    return 1;
  }
  return 0;
}
