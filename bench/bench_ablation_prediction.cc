// Ablation: motion model (DESIGN.md Sec. 4).
//
// Compares the paper's RLS-learned state-transition predictor against a
// classic constant-velocity Kalman filter (the paper's reference [21]) on
// the tour workloads:
//   (a) mean k-step position prediction error (meters), k = 1/4/8;
//   (b) end-to-end cache hit rate when each model drives the motion-aware
//       prefetcher.
// Expected: both track trams almost perfectly; the learned transition
// copes slightly better with the pedestrian walk's heading drift, while
// the KF's fixed dynamics make it cheaper and more stable.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/experiment.h"
#include "motion/kalman.h"
#include "motion/predictor.h"

namespace {

using namespace mars;  // NOLINT

// Mean k-step prediction error over a tour.
double MeanError(motion::PositionPredictor& predictor,
                 const std::vector<workload::TourPoint>& tour, int32_t k) {
  double total = 0.0;
  int64_t count = 0;
  for (size_t t = 0; t + k < tour.size(); ++t) {
    predictor.Observe(tour[t].position);
    if (t < 10) continue;  // warm-up
    const motion::Prediction p = predictor.Predict(k);
    total += (p.mean - tour[t + k].position).Norm();
    ++count;
  }
  return count == 0 ? 0.0 : total / count;
}

}  // namespace

int main() {
  core::PrintTableTitle(
      "Ablation — mean k-step prediction error (m), RLS vs Kalman");
  core::PrintTableHeader({"kind", "k", "RLS", "Kalman"});
  const geometry::Box2 space = geometry::MakeBox2(0, 0, 10000, 10000);
  for (auto kind :
       {workload::TourKind::kTram, workload::TourKind::kPedestrian}) {
    for (int32_t k : {1, 4, 8}) {
      double rls_total = 0, kf_total = 0;
      const int tours = 5;
      for (int i = 0; i < tours; ++i) {
        workload::TourOptions options;
        options.kind = kind;
        options.space = space;
        options.target_speed = 0.5;
        options.frames = 400;
        options.seed = 500 + 13 * static_cast<uint64_t>(i);
        const auto tour = workload::GenerateTour(options);
        motion::MotionPredictor rls;
        motion::KalmanFilterPredictor kf;
        rls_total += MeanError(rls, tour, k);
        kf_total += MeanError(kf, tour, k);
      }
      core::PrintTableRow({bench::TourKindName(kind), std::to_string(k),
                           core::Fmt(rls_total / tours, 2),
                           core::Fmt(kf_total / tours, 2)});
    }
  }

  // End-to-end: which model buys more cache hits?
  core::System::Config config = bench::DefaultConfig();
  config.scene = workload::SceneForDatasetSize(20);
  auto system_or = core::System::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  core::PrintTableTitle(
      "Ablation — end-to-end hit rate (%) by motion model (64K buffer, "
      "speed 0.5)");
  core::PrintTableHeader({"kind", "RLS", "Kalman"});
  for (auto kind :
       {workload::TourKind::kTram, workload::TourKind::kPedestrian}) {
    const auto tours = bench::MakeTours(kind, 0.5, bench::kDefaultTours,
                                        300, -1.0, system.space());
    client::BufferedClient::Options rls;
    rls.buffer_bytes = 64 * 1024;
    rls.predictor = client::BufferedClient::Options::Predictor::kRls;
    client::BufferedClient::Options kf = rls;
    kf.predictor = client::BufferedClient::Options::Predictor::kKalman;
    const core::RunMetrics m_rls = bench::AverageBuffered(system, tours, rls);
    const core::RunMetrics m_kf = bench::AverageBuffered(system, tours, kf);
    core::PrintTableRow({bench::TourKindName(kind),
                         core::Fmt(100 * m_rls.cache_hit_rate, 1),
                         core::Fmt(100 * m_kf.cache_hit_rate, 1)});
  }
  return 0;
}
