// Reproduces Fig. 9 of the paper: "Effect of query size and data set size
// on data retrieval".
//
// (a) Tram tours of equal distance at varying speeds with query frames of
//     5/10/15/20% of the space extent (default 60 MB dataset).
// (b) Tram tours with the default 10% frame over 20/40/60/80 MB datasets.
// Expected shape: data volume falls with speed in every column; larger
// query frames and larger datasets retrieve proportionally more, so the
// absolute benefit of the multiresolution scheme grows with both.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/units.h"
#include "core/experiment.h"
#include "workload/scene.h"

int main() {
  using namespace mars;  // NOLINT

  constexpr double kTourDistance = 3000.0;

  // --- (a) query-size sweep over the default dataset ----------------------
  auto system_or = core::System::Create(bench::DefaultConfig());
  if (!system_or.ok()) {
    std::fprintf(stderr, "%s\n", system_or.status().ToString().c_str());
    return 1;
  }
  core::System& system = **system_or;

  core::PrintTableTitle(
      "Fig. 9(a) — data retrieved (MB per tram tour) vs speed, by query "
      "size");
  core::PrintTableHeader({"speed", "q=5%", "q=10%", "q=15%", "q=20%"});
  for (double speed : core::StandardSpeeds()) {
    const auto tours =
        bench::MakeTours(workload::TourKind::kTram, speed,
                         bench::kDefaultTours, 0, kTourDistance,
                         system.space());
    std::vector<std::string> row = {core::Fmt(speed, 3)};
    for (double fraction : core::StandardQueryFractions()) {
      client::StreamingClient::Options options;
      options.query_fraction = fraction;
      const core::RunMetrics metrics =
          bench::AverageStreaming(system, tours, options);
      row.push_back(core::Fmt(
          static_cast<double>(metrics.demand_bytes) / (1024.0 * 1024.0), 3));
    }
    core::PrintTableRow(row);
  }

  // --- (b) dataset-size sweep at the default 10% frame --------------------
  core::PrintTableTitle(
      "Fig. 9(b) — data retrieved (MB per tram tour) vs speed, by dataset "
      "size");
  core::PrintTableHeader({"speed", "20MB", "40MB", "60MB", "80MB"});

  std::vector<std::unique_ptr<core::System>> systems;
  for (int32_t mb : core::StandardDatasetSizesMb()) {
    core::System::Config config = bench::DefaultConfig();
    config.scene = workload::SceneForDatasetSize(mb);
    auto sys = core::System::Create(config);
    if (!sys.ok()) {
      std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
      return 1;
    }
    systems.push_back(std::move(sys).value());
  }
  for (double speed : core::StandardSpeeds()) {
    std::vector<std::string> row = {core::Fmt(speed, 3)};
    for (auto& sys : systems) {
      const auto tours =
          bench::MakeTours(workload::TourKind::kTram, speed,
                           bench::kDefaultTours, 0, kTourDistance,
                           sys->space());
      const core::RunMetrics metrics = bench::AverageStreaming(
          *sys, tours, client::StreamingClient::Options());
      row.push_back(core::Fmt(
          static_cast<double>(metrics.demand_bytes) / (1024.0 * 1024.0), 3));
    }
    core::PrintTableRow(row);
  }
  return 0;
}
