// Extension experiment: out-of-core coefficient store (page file +
// motion-aware server buffer pool).
//
// The disk store pages each shard's R*-tree into a single page file
// behind a per-shard buffer pool (src/storage/), so the question this
// bench answers is twofold:
//
//   1. Ablation — does paging change anything? Every query runs against
//      the in-memory sharded index and both disk configurations in
//      lockstep; the record sets and node accesses must match bit for
//      bit (paging may only change *where* nodes live, never what a
//      query returns or touches).
//
//   2. Eviction policy — does the motion-aware policy earn its keep? The
//      pool is sized to ~10% of the dataset's pages and the workload is
//      six slow "tourist" clients orbiting fixed neighbourhoods plus one
//      fast scanner sweeping the whole scene. The scanner's per-frame
//      footprint overflows the pool, so plain LRU lets it flush the
//      tourists' working sets every frame; the motion policy scores
//      pages by the fleet's predicted visit probabilities
//      (server/motion_interest.h) and keeps the tourist neighbourhoods
//      resident. Motion must beat LRU on pool hit rate.
//
// The bench fails loudly if:
//
//   * any disk query returns different records or different node
//     accesses than the in-memory index, or
//   * the motion policy's measured hit rate is not strictly above LRU's
//     (the acceptance target this PR exists for).
//
// CI runs this with MARS_BENCH_SMOKE=1 / MARS_BENCH_JSON=<path>; the
// emitted metrics are deterministic simulated quantities (hit rates,
// page reads — never wall clock), gated against bench/baselines/ by
// tools/bench_gate.py.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "geometry/box.h"
#include "geometry/vec.h"
#include "index/record.h"
#include "index/shard_map.h"
#include "index/sharded_index.h"
#include "server/motion_interest.h"
#include "storage/storage_manager.h"

namespace {

using namespace mars;  // NOLINT

constexpr int32_t kShards = 4;
constexpr int32_t kPageSize = 2048;
constexpr double kSpaceExtent = 1000.0;

// Same synthetic coefficient table the storage tests use, scaled up:
// clustered objects whose support regions grow with coefficient weight.
std::vector<index::CoeffRecord> MakeRecords(int objects, int coeffs,
                                            uint64_t seed) {
  common::Rng rng(seed);
  std::vector<index::CoeffRecord> records;
  records.reserve(static_cast<size_t>(objects) * coeffs);
  for (int obj = 0; obj < objects; ++obj) {
    const double cx = rng.Uniform(50, 950);
    const double cy = rng.Uniform(50, 950);
    for (int c = 0; c < coeffs; ++c) {
      index::CoeffRecord rec;
      rec.object_id = obj;
      rec.coeff_id = c;
      rec.w = rng.UniformDouble();
      const double extent = 1.0 + 20.0 * rec.w;
      const double x = cx + rng.Uniform(-25, 25);
      const double y = cy + rng.Uniform(-25, 25);
      rec.position = {x, y, rng.Uniform(0, 20)};
      rec.support_bounds = geometry::MakeBox3(x - extent, y - extent, 0,
                                              x + extent, y + extent, 20);
      records.push_back(rec);
    }
  }
  return records;
}

// One query of the precomputed schedule: who asked, from where, for what.
struct Step {
  int32_t client_id = 0;
  geometry::Vec2 position;
  geometry::Box2 window;
};

geometry::Box2 WindowAround(const geometry::Vec2& p, double half) {
  const double lo_x = std::clamp(p.x - half, 0.0, kSpaceExtent);
  const double lo_y = std::clamp(p.y - half, 0.0, kSpaceExtent);
  const double hi_x = std::clamp(p.x + half, 0.0, kSpaceExtent);
  const double hi_y = std::clamp(p.y + half, 0.0, kSpaceExtent);
  return geometry::MakeBox2(lo_x, lo_y, hi_x, hi_y);
}

// Precomputes every frame's queries so all three index configurations
// replay the exact same workload. Tourists orbit fixed neighbourhoods
// spread over all shards (smooth paths the motion predictor locks onto);
// the scanner rasters the whole scene fast enough to overflow the pool
// each frame.
std::vector<std::vector<Step>> MakeSchedule(int32_t frames,
                                            double tourist_half,
                                            double scanner_half) {
  const geometry::Vec2 homes[] = {{150, 150}, {850, 150}, {150, 850},
                                  {850, 850}, {500, 200}, {500, 800}};
  constexpr int kTourists = 6;
  constexpr double kOrbitRadius = 35.0;
  constexpr double kOrbitStep = 0.12;  // radians per frame — slow
  constexpr double kScanSpeed = 120.0;  // units per frame — fast

  std::vector<std::vector<Step>> schedule;
  schedule.reserve(static_cast<size_t>(frames));
  for (int32_t t = 0; t < frames; ++t) {
    std::vector<Step> frame;
    for (int32_t c = 0; c < kTourists; ++c) {
      const double theta = kOrbitStep * t + c * 1.1;
      Step step;
      step.client_id = c;
      step.position = {homes[c].x + kOrbitRadius * std::cos(theta),
                       homes[c].y + kOrbitRadius * std::sin(theta)};
      step.window = WindowAround(step.position, tourist_half);
      frame.push_back(step);
    }
    // The scanner queries last so its pollution is what the next frame's
    // tourists find in the pool.
    const double travelled = kScanSpeed * t;
    const double row = std::floor(travelled / kSpaceExtent);
    Step scan;
    scan.client_id = kTourists;
    scan.position = {std::fmod(travelled, kSpaceExtent),
                     100.0 + std::fmod(row * 173.0, 800.0)};
    scan.window = WindowAround(scan.position, scanner_half);
    frame.push_back(scan);
    schedule.push_back(std::move(frame));
  }
  return schedule;
}

index::ShardedIndexOptions DiskOptions(const std::string& path,
                                       storage::EvictPolicy evict,
                                       int64_t pool_pages) {
  index::ShardedIndexOptions options;
  options.shards = kShards;
  options.storage.store = storage::StoreKind::kDisk;
  options.storage.path = path;
  options.storage.page_size = kPageSize;
  options.storage.pool_pages = pool_pages;
  options.storage.evict = evict;
  return options;
}

void RemovePageFiles(const std::string& path) {
  std::remove(path.c_str());
  for (int32_t k = 0; k < kShards; ++k) {
    std::remove((path + ".shard" + std::to_string(k)).c_str());
  }
}

struct PoolTotals {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t disk_reads = 0;
  int64_t disk_writes = 0;
  int64_t resident_pages = 0;
};

PoolTotals SumPools(const index::ShardedCoefficientIndex& index) {
  PoolTotals total;
  for (const auto& shard : index.PoolStats()) {
    total.hits += shard.pool.hits;
    total.misses += shard.pool.misses;
    total.evictions += shard.pool.evictions;
    total.disk_reads += shard.pool.disk_reads;
    total.disk_writes += shard.pool.disk_writes;
    total.resident_pages += shard.pool.resident_pages;
  }
  return total;
}

double HitRate(const PoolTotals& after, const PoolTotals& before) {
  const double hits = static_cast<double>(after.hits - before.hits);
  const double misses = static_cast<double>(after.misses - before.misses);
  const double total = hits + misses;
  return total > 0.0 ? hits / total : 0.0;
}

}  // namespace

int main() {
  const bool smoke = bench::SmokeMode();
  const int objects = smoke ? 120 : 240;
  const int coeffs = smoke ? 40 : 50;
  const int32_t warmup_frames = smoke ? 8 : 15;
  const int32_t measured_frames = smoke ? 40 : 120;
  const double tourist_half = 55.0;
  const double scanner_half = 170.0;

  const auto records = MakeRecords(objects, coeffs, /*seed=*/11);
  const geometry::Box2 space = index::ShardMap::GroundBounds(records);
  const auto schedule =
      MakeSchedule(warmup_frames + measured_frames, tourist_half, scanner_half);

  // Probe build: an effectively unbounded pool holds every page the build
  // writes, so the resident total *is* the dataset's page count — which
  // sizes the real pools at ~10% of the data.
  const std::string probe_path = "bench_storage_probe.pages";
  RemovePageFiles(probe_path);
  int64_t dataset_pages = 0;
  {
    index::ShardedCoefficientIndex probe(DiskOptions(
        probe_path, storage::EvictPolicy::kLru, /*pool_pages=*/1 << 30));
    probe.Build(records);
    dataset_pages = SumPools(probe).resident_pages;
  }
  RemovePageFiles(probe_path);
  const int64_t pool_pages = std::max<int64_t>(kShards, dataset_pages / 10);

  // The three contestants replay the same schedule in lockstep.
  index::ShardedIndexOptions memory_options;
  memory_options.shards = kShards;
  index::ShardedCoefficientIndex memory_index(memory_options);
  memory_index.Build(records);

  const std::string lru_path = "bench_storage_lru.pages";
  const std::string motion_path = "bench_storage_motion.pages";
  RemovePageFiles(lru_path);
  RemovePageFiles(motion_path);
  index::ShardedCoefficientIndex lru_index(
      DiskOptions(lru_path, storage::EvictPolicy::kLru, pool_pages));
  index::ShardedCoefficientIndex motion_index(
      DiskOptions(motion_path, storage::EvictPolicy::kMotion, pool_pages));
  lru_index.Build(records);
  motion_index.Build(records);

  server::MotionInterestTracker tracker(space, {});

  PoolTotals lru_start, motion_start;
  int64_t queries = 0;
  int64_t memory_accesses = 0;
  for (size_t t = 0; t < schedule.size(); ++t) {
    if (static_cast<int32_t>(t) == warmup_frames) {
      lru_start = SumPools(lru_index);
      motion_start = SumPools(motion_index);
      memory_accesses = 0;
    }
    // Mirror the server's tick: observe every client's reported position,
    // refresh the motion pools' interest field, then serve the queries.
    for (const Step& step : schedule[t]) {
      tracker.Observe(step.client_id, step.position);
    }
    motion_index.UpdateInterest(tracker.Snapshot());

    for (const Step& step : schedule[t]) {
      std::vector<index::RecordId> want, got_lru, got_motion;
      const int64_t io_mem =
          memory_index.Query(step.window, 0.2, 1.0, &want);
      const int64_t io_lru = lru_index.Query(step.window, 0.2, 1.0, &got_lru);
      const int64_t io_motion =
          motion_index.Query(step.window, 0.2, 1.0, &got_motion);
      if (want != got_lru || want != got_motion || io_mem != io_lru ||
          io_mem != io_motion) {
        std::fprintf(stderr,
                     "FATAL: frame %zu client %d: disk query diverged from "
                     "memory (records %zu/%zu/%zu, accesses "
                     "%lld/%lld/%lld)\n",
                     t, step.client_id, want.size(), got_lru.size(),
                     got_motion.size(), static_cast<long long>(io_mem),
                     static_cast<long long>(io_lru),
                     static_cast<long long>(io_motion));
        RemovePageFiles(lru_path);
        RemovePageFiles(motion_path);
        return 1;
      }
      ++queries;
      memory_accesses += io_mem;
    }
  }

  const PoolTotals lru_end = SumPools(lru_index);
  const PoolTotals motion_end = SumPools(motion_index);
  RemovePageFiles(lru_path);
  RemovePageFiles(motion_path);

  const double lru_hit_rate = HitRate(lru_end, lru_start);
  const double motion_hit_rate = HitRate(motion_end, motion_start);
  const int64_t lru_reads = lru_end.disk_reads - lru_start.disk_reads;
  const int64_t motion_reads = motion_end.disk_reads - motion_start.disk_reads;

  std::printf("out-of-core coefficient store%s\n", smoke ? " (smoke)" : "");
  std::printf(
      "dataset: %zu records, %lld pages of %d B; pool %lld pages "
      "(%.1f%% of data) split over %d shards\n",
      records.size(), static_cast<long long>(dataset_pages), kPageSize,
      static_cast<long long>(pool_pages),
      100.0 * static_cast<double>(pool_pages) /
          static_cast<double>(std::max<int64_t>(dataset_pages, 1)),
      kShards);
  std::printf(
      "workload: %lld queries over %d measured frames "
      "(6 tourists + 1 scanner); %lld node accesses\n",
      static_cast<long long>(queries), measured_frames,
      static_cast<long long>(memory_accesses));
  std::printf("%-8s %10s %10s %12s %12s\n", "policy", "hit rate", "evict",
              "page reads", "page writes");
  std::printf("%-8s %9.1f%% %10lld %12lld %12lld\n", "lru",
              100.0 * lru_hit_rate,
              static_cast<long long>(lru_end.evictions - lru_start.evictions),
              static_cast<long long>(lru_reads),
              static_cast<long long>(lru_end.disk_writes -
                                     lru_start.disk_writes));
  std::printf(
      "%-8s %9.1f%% %10lld %12lld %12lld\n", "motion",
      100.0 * motion_hit_rate,
      static_cast<long long>(motion_end.evictions - motion_start.evictions),
      static_cast<long long>(motion_reads),
      static_cast<long long>(motion_end.disk_writes -
                             motion_start.disk_writes));
  std::printf("every disk query matched the in-memory index exactly\n");

  if (motion_hit_rate <= lru_hit_rate) {
    std::fprintf(stderr,
                 "FATAL: motion-aware eviction did not beat LRU "
                 "(hit rate %.4f vs %.4f at a %lld-page pool)\n",
                 motion_hit_rate, lru_hit_rate,
                 static_cast<long long>(pool_pages));
    return 1;
  }

  const std::vector<bench::BenchMetric> metrics = {
      {"motion_hit_rate", motion_hit_rate, true},
      {"lru_hit_rate", lru_hit_rate, true},
      {"motion_hit_advantage", motion_hit_rate - lru_hit_rate, true},
      {"motion_page_reads", static_cast<double>(motion_reads), false},
      {"lru_page_reads", static_cast<double>(lru_reads), false},
      {"node_accesses", static_cast<double>(memory_accesses), false},
  };
  if (!bench::WriteBenchJson("storage", metrics)) {
    return 1;
  }
  return 0;
}
