// Reproduces Fig. 12 of the paper: "Effect of varying speed" on index I/O
// cost — average R*-tree node accesses per window query for the
// motion-aware support-region index vs the naive point index (Sec. VI).
//
// As in the paper's Sec. VII-D, the indexing component is evaluated in
// isolation: every query frame of a tram tour is issued as a standalone
// window query Q(R, 1.0, w_min(speed)) against both access methods over
// the default 60 MB record table.
//
// Expected shapes: clients at speeds 0.9-1.0 need roughly an order of
// magnitude (the paper reports 8-11x) fewer accesses than clients at
// 0.001, and the motion-aware access method costs noticeably less
// (paper: 21-52%) than the naive two-pass method at every speed.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "client/viewport.h"
#include "core/experiment.h"
#include "index/access.h"
#include "index/sharded_index.h"
#include "workload/scene.h"

namespace {

// Issues one standalone window query per tour frame; returns mean node
// accesses per query.
double MeanIoPerQuery(
    mars::index::CoefficientIndex& index,
    const std::vector<std::vector<mars::workload::TourPoint>>& tours,
    const mars::geometry::Box2& space, double query_fraction) {
  mars::client::Viewport viewport(space, query_fraction, query_fraction);
  index.ResetStats();
  int64_t queries = 0;
  std::vector<mars::index::RecordId> out;
  for (const auto& tour : tours) {
    for (const auto& point : tour) {
      out.clear();
      index.Query(viewport.WindowAt(point.position), point.speed, 1.0,
                  &out);
      ++queries;
    }
  }
  return queries == 0 ? 0.0
                      : static_cast<double>(index.node_accesses()) / queries;
}

}  // namespace

int main() {
  using namespace mars;  // NOLINT

  const workload::SceneOptions scene = bench::DefaultConfig().scene;
  auto db = workload::GenerateScene(scene);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("records: %zu\n", db->records().size());

  index::SupportRegionIndex support;
  index::NaivePointIndex naive;
  support.Build(db->records());
  naive.Build(db->records());

  core::PrintTableTitle(
      "Fig. 12 — index I/O (node accesses per window query) vs speed");
  core::PrintTableHeader({"speed", "motion-aware", "naive", "saving"});
  for (double speed : core::StandardSpeeds()) {
    const auto tours =
        bench::MakeTours(workload::TourKind::kTram, speed,
                         bench::kDefaultTours, 200, -1.0, scene.space);
    const double ma = MeanIoPerQuery(support, tours, scene.space, 0.1);
    const double nv = MeanIoPerQuery(naive, tours, scene.space, 0.1);
    const double saving = nv > 0 ? 100.0 * (1.0 - ma / nv) : 0.0;
    core::PrintTableRow({core::Fmt(speed, 3), core::Fmt(ma, 1),
                         core::Fmt(nv, 1), core::Fmt(saving, 1) + "%"});
  }

  // Shard sweep of the motion-aware index at slow and fast speeds: every
  // K returns the same required set; the I/O column shows what coverage
  // pruning vs per-shard tree height does to the access count.
  core::PrintTableTitle(
      "Fig. 12 (suppl.) — sharded motion-aware index I/O per query");
  core::PrintTableHeader({"speed", "K=1", "K=4", "K=16"});
  for (double speed : {0.001, 0.5, 1.0}) {
    const auto tours =
        bench::MakeTours(workload::TourKind::kTram, speed,
                         bench::kDefaultTours, 200, -1.0, scene.space);
    std::vector<std::string> row = {core::Fmt(speed, 3)};
    for (int32_t shards : {1, 4, 16}) {
      index::ShardedIndexOptions options;
      options.shards = shards;
      index::ShardedCoefficientIndex sharded(options);
      sharded.Build(db->records());
      row.push_back(
          core::Fmt(MeanIoPerQuery(sharded, tours, scene.space, 0.1), 1));
    }
    core::PrintTableRow(row);
  }
  return 0;
}
